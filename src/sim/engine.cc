#include "sim/engine.hh"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace fhs {

double SimResult::utilization(ResourceType alpha, const Cluster& cluster) const {
  if (completion_time <= 0) return 0.0;
  const double capacity = static_cast<double>(cluster.processors(alpha)) *
                          static_cast<double>(completion_time);
  return static_cast<double>(busy_ticks_per_type.at(alpha)) / capacity;
}

namespace {

/// Dispatch latency is sampled (one timed call in every
/// kDispatchSamplePeriod decisions) so the steady_clock reads stay off
/// the common path; counters aggregate in plain locals and flush to the
/// obs registry once per simulate() call (see obs/metrics.hh).
constexpr std::uint64_t kDispatchSamplePeriod = 64;

/// One task currently executing on a concrete processor.
struct Running {
  TaskId task;
  std::uint32_t processor;  // global id
  ResourceType type;
  Work remaining;
  Time started;  // when this continuous run began (for trace segments)
  // Fault-mode extras (inert at full speed without a plan):
  Work done = 0;             // units completed during this run
  Time credit = 0;           // ticks toward the next unit, in [0, factor)
  std::uint32_t factor = 1;  // ticks per unit on this processor right now
  bool pure = true;          // ran at factor 1 the whole time (plain trace add)
};

/// Engine state + the DispatchContext view handed to the policy.
class Simulation final : public DispatchContext {
 public:
  Simulation(const KDag& dag, const Cluster& cluster, const SimOptions& options,
             ExecutionTrace* trace)
      : dag_(dag), cluster_(cluster), options_(options), trace_(trace) {
    if (cluster.num_types() < dag.num_types()) {
      throw std::invalid_argument(
          "simulate: job uses more resource types than the cluster provides");
    }
    const std::size_t n = dag.task_count();
    const ResourceType k = dag.num_types();
    remaining_parents_.resize(n);
    remaining_work_.resize(n);
    ready_seq_.assign(n, 0);
    last_proc_.assign(n, std::numeric_limits<std::uint32_t>::max());
    last_end_.assign(n, -1);
    for (TaskId v = 0; v < n; ++v) {
      remaining_parents_[v] = static_cast<std::uint32_t>(dag.parent_count(v));
      remaining_work_[v] = dag.work(v);
    }
    queues_.resize(k);
    queue_work_.assign(k, 0);
    free_procs_.resize(k);
    for (ResourceType a = 0; a < k; ++a) {
      // Preallocate each ready queue to its type's task population so
      // make_ready/requeue never reallocate inside the dispatch loop.
      queues_[a].reserve(dag.task_count(a));
      // Keep free lists sorted descending so pop_back yields the smallest
      // id (deterministic placement).
      const std::uint32_t p = cluster.processors(a);
      free_procs_[a].reserve(p);
      for (std::uint32_t i = p; i-- > 0;) {
        free_procs_[a].push_back(cluster.offset(a) + i);
      }
    }
    running_.reserve(cluster.total_processors());
    scratch_running_.reserve(cluster.total_processors());
    obs_dispatches_per_type_.assign(k, 0);
    result_.busy_ticks_per_type.assign(k, 0);
    alive_per_type_.resize(k);
    for (ResourceType a = 0; a < k; ++a) alive_per_type_[a] = cluster.processors(a);
    if (options.faults != nullptr && !options.faults->empty()) {
      options.faults->validate_against(cluster);
      injector_.emplace(*options.faults, cluster.total_processors());
      proc_factor_.assign(cluster.total_processors(), 1);
      proc_down_.assign(cluster.total_processors(), 0);
      proc_down_since_.assign(cluster.total_processors(), 0);
    }
    for (TaskId root : dag.roots()) make_ready(root);
  }

  // --- DispatchContext ----------------------------------------------------
  [[nodiscard]] ResourceType num_types() const noexcept override {
    return dag_.num_types();
  }
  [[nodiscard]] Time now() const noexcept override { return now_; }
  [[nodiscard]] std::uint32_t free_processors(ResourceType alpha) const override {
    return static_cast<std::uint32_t>(free_procs_.at(alpha).size());
  }
  // Under a fault plan this is the *alive* count, so capacity loss is
  // visible to utilization-balancing policies; without one it equals the
  // static cluster width.
  [[nodiscard]] std::uint32_t total_processors(ResourceType alpha) const override {
    return alive_per_type_.at(alpha);
  }
  [[nodiscard]] ReadySpan ready(ResourceType alpha) const override {
    return make_ready_span(queues_.at(alpha));
  }
  [[nodiscard]] Work queue_work(ResourceType alpha) const override {
    return queue_work_.at(alpha);
  }
  [[nodiscard]] Work remaining_work(TaskId task) const override {
    return remaining_work_.at(task);
  }

  void assign(ResourceType alpha, std::size_t index) override {
    auto& queue = queues_.at(alpha);
    if (index >= queue.size()) {
      throw std::logic_error("Scheduler::dispatch assigned a bad queue index");
    }
    auto& frees = free_procs_.at(alpha);
    if (frees.empty()) {
      throw std::logic_error("Scheduler::dispatch assigned with no free processor");
    }
    const TaskId task = queue[index];
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(index));
    invalidate_ready_spans();
    queue_work_[alpha] -= remaining_work_[task];
    // Processor affinity: a preempted task resumes on its previous
    // processor when that processor is free (reallocation is free in the
    // paper's model, but affinity keeps traces minimal and makes
    // preemptive FIFO coincide exactly with non-preemptive FIFO).
    std::uint32_t proc;
    const auto prev = std::find(frees.begin(), frees.end(), last_proc_[task]);
    if (prev != frees.end()) {
      proc = *prev;
      frees.erase(prev);
    } else {
      proc = frees.back();  // smallest free id (list kept descending)
      frees.pop_back();
    }
    // A true preemption: the task had started, and it now resumes after a
    // gap or on a different processor.
    if (remaining_work_[task] < dag_.work(task) &&
        (proc != last_proc_[task] || now_ != last_end_[task])) {
      ++result_.preemptions;
    }
    Running run{task, proc, alpha, remaining_work_[task], now_};
    if (injector_.has_value()) {
      run.factor = proc_factor_[proc];
      run.pure = run.factor == 1;
    }
    running_.push_back(run);
    ++obs_dispatches_per_type_[alpha];
  }

  // --- main loop ------------------------------------------------------------
  SimResult run(Scheduler& scheduler) {
    const bool observed = obs::enabled();
    obs::TraceSpan span("simulate", "sim");
    scheduler.prepare(dag_, cluster_);
    apply_fault_events();  // t=0 events take effect before the first dispatch
    const std::size_t n = dag_.task_count();
    while (completed_ < n) {
      if (observed) {
        std::size_t depth = 0;
        for (const auto& queue : queues_) depth += queue.size();
        obs_ready_depth_.record(depth);
        if (result_.decision_points % kDispatchSamplePeriod == 0) {
          const auto t0 = std::chrono::steady_clock::now();
          scheduler.dispatch(*this);
          obs_dispatch_ns_.record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count()));
        } else {
          scheduler.dispatch(*this);
        }
      } else {
        scheduler.dispatch(*this);
      }
      ++result_.decision_points;
      enforce_work_conservation();
      if (running_.empty()) {
        // Under faults the job may merely be *waiting*: everything ready
        // needs a processor that is down right now.  Jump to the next
        // plan event and re-decide; only a plan with no further events
        // leaves the job truly stranded.
        if (injector_.has_value() &&
            injector_->next_event_time() != kNoFaultEvent) {
          now_ = injector_->next_event_time();
          apply_fault_events();
          continue;
        }
        if (injector_.has_value()) {
          throw std::runtime_error(
              "simulate: fault plan stranded " +
              std::to_string(n - completed_) +
              " outstanding task(s): every matching processor is failed and "
              "no further recovery is scheduled");
        }
        throw std::logic_error("simulate: no runnable task but job incomplete");
      }
      advance();
      if (options_.mode == ExecutionMode::kPreemptive) recall_running();
    }
    result_.completion_time = now_;
    if (observed) flush_obs();
    return std::move(result_);
  }

 private:
  /// One registry flush per run: a handful of mutex-guarded lookups and
  /// relaxed atomic adds, amortized over the whole simulation.
  void flush_obs() const {
    auto& registry = obs::Registry::global();
    registry.counter("sim.runs").add(1);
    registry.counter("sim.decisions").add(result_.decision_points);
    registry.counter("sim.preemptions").add(result_.preemptions);
    registry.histogram("sim.ready_depth").merge(obs_ready_depth_);
    registry.histogram("sim.dispatch_ns").merge(obs_dispatch_ns_);
    std::uint64_t dispatches = 0;
    for (ResourceType a = 0; a < num_types(); ++a) {
      // Idle->busy processor transitions, i.e. task dispatches, per
      // type; completions mirror them one-to-one, so one counter tells
      // both sides of the busy/idle story.
      registry.counter("sim.type" + std::to_string(a) + ".busy_transitions")
          .add(obs_dispatches_per_type_[a]);
      dispatches += obs_dispatches_per_type_[a];
    }
    registry.counter("sim.dispatches").add(dispatches);
    if (injector_.has_value()) {
      registry.counter("sim.fault.failures").add(result_.faults.failures);
      registry.counter("sim.fault.recoveries").add(result_.faults.recoveries);
      registry.counter("sim.fault.slowdowns").add(result_.faults.slowdowns);
      registry.counter("sim.fault.tasks_killed").add(result_.faults.tasks_killed);
      registry.counter("sim.fault.work_discarded")
          .add(static_cast<std::uint64_t>(result_.faults.work_discarded));
      registry.histogram("sim.fault.recovery_latency").merge(obs_recovery_latency_);
    }
  }
  void make_ready(TaskId task) {
    const ResourceType alpha = dag_.type(task);
    ready_seq_[task] = next_seq_++;
    queues_[alpha].push_back(task);
    queue_work_[alpha] += remaining_work_[task];
    invalidate_ready_spans();
  }

  /// Re-inserts a preempted task keeping the queue ordered by the
  /// sequence in which tasks first became ready (FIFO semantics).
  void requeue(TaskId task) {
    const ResourceType alpha = dag_.type(task);
    auto& queue = queues_[alpha];
    const auto pos = std::lower_bound(
        queue.begin(), queue.end(), ready_seq_[task],
        [this](TaskId lhs, std::uint64_t seq) { return ready_seq_[lhs] < seq; });
    queue.insert(pos, task);
    queue_work_[alpha] += remaining_work_[task];
    invalidate_ready_spans();
  }

  void enforce_work_conservation() const {
    for (ResourceType a = 0; a < num_types(); ++a) {
      if (!free_procs_[a].empty() && !queues_[a].empty()) {
        throw std::logic_error(
            "Scheduler::dispatch left a free processor idle while a matching "
            "task was ready (policies must be work-conserving)");
      }
    }
  }

  /// Advances to the next event -- the earliest task completion at
  /// current rates, or the next fault-plan event, whichever is sooner --
  /// charging busy ticks and recording trace segments, then processes
  /// completions followed by due fault events (completions first: a task
  /// finishing at the instant its processor fails keeps its work).
  void advance() {
    Time dt = std::numeric_limits<Time>::max();
    for (const Running& r : running_) {
      dt = std::min(dt, static_cast<Time>(r.factor) * r.remaining - r.credit);
    }
    if (injector_.has_value() && injector_->next_event_time() != kNoFaultEvent) {
      dt = std::min(dt, injector_->next_event_time() - now_);
    }
    assert(dt > 0);
    now_ += dt;
    for (Running& r : running_) {
      result_.busy_ticks_per_type[r.type] += dt;
      const Work units = (r.credit + dt) / r.factor;
      r.credit = (r.credit + dt) % r.factor;
      r.done += units;
      r.remaining -= units;
      remaining_work_[r.task] -= units;
    }
    // Complete finished tasks in processor order (deterministic).
    std::sort(running_.begin(), running_.end(),
              [](const Running& a, const Running& b) { return a.processor < b.processor; });
    scratch_running_.clear();
    for (const Running& r : running_) {
      if (r.remaining > 0) {
        scratch_running_.push_back(r);
        continue;
      }
      record_segment(r);
      release_processor(r);
      ++completed_;
      for (TaskId child : dag_.children(r.task)) {
        assert(remaining_parents_[child] > 0);
        if (--remaining_parents_[child] == 0) make_ready(child);
      }
    }
    running_.swap(scratch_running_);
    apply_fault_events();
  }

  /// Preemptive mode: return every running task to its queue so the next
  /// dispatch reconsiders the full allocation.  On a slowed processor any
  /// sub-unit credit is dropped (only whole completed units were ever
  /// subtracted from remaining_work_, so accounting stays exact).
  void recall_running() {
    for (const Running& r : running_) {
      record_segment(r);
      release_processor(r);
      last_proc_[r.task] = r.processor;
      last_end_[r.task] = now_;
      requeue(r.task);
    }
    running_.clear();
  }

  /// Closes the continuous run [r.started, now_) in the trace.  The
  /// trace merges back-to-back runs of the same task on the same
  /// processor (a "preemption" that changes nothing).  Runs that touched
  /// a slowdown carry their explicit work count and never merge.
  void record_segment(const Running& r, bool killed = false) {
    if (trace_ == nullptr || !options_.record_trace || now_ <= r.started) return;
    if (r.pure && !killed) {
      trace_->add(r.task, r.processor, r.started, now_);
    } else {
      trace_->add_fault_segment(r.task, r.processor, r.started, now_, r.done,
                                killed);
    }
  }

  // --- fault plumbing -------------------------------------------------------
  /// Applies every plan event due at or before now_ (the engine only
  /// ever lands exactly on event times, so in practice "at now_").
  void apply_fault_events() {
    if (!injector_.has_value()) return;
    for (const FaultEvent& event : injector_->take_events_until(now_)) {
      switch (event.kind) {
        case FaultKind::kFail:
          on_fail(event);
          break;
        case FaultKind::kRecover:
          on_recover(event);
          break;
        case FaultKind::kSlow:
          on_slow(event);
          break;
      }
    }
  }

  void on_fail(const FaultEvent& event) {
    const std::uint32_t proc = event.processor;
    ++result_.faults.failures;
    const ResourceType alpha = cluster_.type_of_processor(proc);
    assert(alive_per_type_[alpha] > 0);
    --alive_per_type_[alpha];
    proc_down_[proc] = 1;
    proc_down_since_[proc] = event.at;
    proc_factor_[proc] = 1;  // a recovered processor restarts at full speed
    // Kill the occupant, if any: record the doomed segment, discard every
    // unit the task has ever completed, and send it back to the ready
    // queue from scratch (re-execution model).
    for (std::size_t i = 0; i < running_.size(); ++i) {
      if (running_[i].processor != proc) continue;
      const Running victim = running_[i];
      running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
      record_segment(victim, /*killed=*/true);
      ++result_.faults.tasks_killed;
      result_.faults.work_discarded += dag_.work(victim.task) -
                                       remaining_work_[victim.task];
      remaining_work_[victim.task] = dag_.work(victim.task);
      make_ready(victim.task);
      return;
    }
    // Idle processor: pull it out of its free list.
    auto& frees = free_procs_[alpha];
    const auto pos = std::find(frees.begin(), frees.end(), proc);
    assert(pos != frees.end());
    frees.erase(pos);
  }

  void on_recover(const FaultEvent& event) {
    const std::uint32_t proc = event.processor;
    if (proc_down_[proc] != 0) {
      ++result_.faults.recoveries;
      obs_recovery_latency_.record(
          static_cast<std::uint64_t>(event.at - proc_down_since_[proc]));
      proc_down_[proc] = 0;
      proc_factor_[proc] = 1;
      const ResourceType alpha = cluster_.type_of_processor(proc);
      ++alive_per_type_[alpha];
      auto& frees = free_procs_[alpha];
      const auto pos = std::lower_bound(frees.begin(), frees.end(), proc,
                                        std::greater<std::uint32_t>{});
      frees.insert(pos, proc);
      return;
    }
    // Recovery from a slowdown: back to full speed in place.
    rescale_processor(proc, 1);
  }

  void on_slow(const FaultEvent& event) {
    ++result_.faults.slowdowns;
    rescale_processor(event.processor, event.factor);
  }

  /// Changes a live processor's rate, carrying any running task's credit
  /// over proportionally (credit' = floor(credit * new / old), which
  /// keeps credit' < new and never over-credits).
  void rescale_processor(std::uint32_t proc, std::uint32_t new_factor) {
    const std::uint32_t old_factor = proc_factor_[proc];
    proc_factor_[proc] = new_factor;
    for (Running& r : running_) {
      if (r.processor != proc) continue;
      r.credit = r.credit * new_factor / old_factor;
      r.factor = new_factor;
      if (new_factor != 1) r.pure = false;
      return;
    }
  }

  void release_processor(const Running& r) {
    auto& frees = free_procs_[r.type];
    // Insert keeping descending order.
    const auto pos = std::lower_bound(frees.begin(), frees.end(), r.processor,
                                      std::greater<std::uint32_t>{});
    frees.insert(pos, r.processor);
  }

  const KDag& dag_;
  const Cluster& cluster_;
  SimOptions options_;
  ExecutionTrace* trace_;

  Time now_ = 0;
  std::size_t completed_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<std::uint32_t> remaining_parents_;
  std::vector<Work> remaining_work_;
  std::vector<std::uint64_t> ready_seq_;
  std::vector<std::uint32_t> last_proc_;  // previous processor (affinity)
  std::vector<Time> last_end_;            // when the previous run ended
  std::vector<std::vector<TaskId>> queues_;
  std::vector<Work> queue_work_;
  std::vector<std::vector<std::uint32_t>> free_procs_;
  std::vector<Running> running_;
  std::vector<Running> scratch_running_;  // reused by advance(); never shrinks
  SimResult result_;

  // Fault state; engaged only when options_.faults is a non-empty plan.
  // proc_* vectors are indexed by global processor id.
  std::optional<FaultInjector> injector_;
  std::vector<std::uint32_t> alive_per_type_;
  std::vector<std::uint32_t> proc_factor_;  // ticks per unit of work
  std::vector<std::uint8_t> proc_down_;
  std::vector<Time> proc_down_since_;

  // Local observability aggregation, flushed once by flush_obs().
  std::vector<std::uint64_t> obs_dispatches_per_type_;
  obs::LocalHistogram obs_ready_depth_;
  obs::LocalHistogram obs_dispatch_ns_;
  obs::LocalHistogram obs_recovery_latency_;
};

}  // namespace

SimResult simulate(const KDag& dag, const Cluster& cluster, Scheduler& scheduler,
                   const SimOptions& options, ExecutionTrace* trace) {
  if (trace != nullptr) trace->clear();
  Simulation sim(dag, cluster, options, trace);
  return sim.run(scheduler);
}

}  // namespace fhs
