// The single-job engine as a thin adapter over core/engine_core.hh.
//
// Everything mechanical -- ready queues, event selection, fault
// application, trace recording -- lives in EngineCore; this file only
// binds the DispatchContext the policies see, the sim-flavored exception
// messages, and the obs contract (sim.* counters flushed once per run).
// The pre-core engine is frozen in legacy_engine.cc and the two are
// differential-tested byte for byte in tests/core_differential_test.cc.
#include "sim/engine.hh"

#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/engine_core.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace fhs {

double SimResult::utilization(ResourceType alpha, const Cluster& cluster) const {
  if (completion_time <= 0) return 0.0;
  const double capacity = static_cast<double>(cluster.processors(alpha)) *
                          static_cast<double>(completion_time);
  return static_cast<double>(busy_ticks_per_type.at(alpha)) / capacity;
}

namespace {

/// Dispatch latency is sampled (one timed call in every
/// kDispatchSamplePeriod decisions) so the steady_clock reads stay off
/// the common path; counters aggregate in plain locals and flush to the
/// obs registry once per simulate() call (see obs/metrics.hh).
constexpr std::uint64_t kDispatchSamplePeriod = 64;

/// Sim-flavored core reactions: the recovery-latency histogram and the
/// documented stranded-job exceptions.
class SimListener final : public EngineCoreListener {
 public:
  void on_recover_applied(Time latency) override {
    recovery_latency_.record(static_cast<std::uint64_t>(latency));
  }
  void on_stranded(std::size_t outstanding) override {
    if (has_injector_) {
      throw std::runtime_error(
          "simulate: fault plan stranded " + std::to_string(outstanding) +
          " outstanding task(s): every matching processor is failed and "
          "no further recovery is scheduled");
    }
    throw std::logic_error("simulate: no runnable task but job incomplete");
  }

  void set_has_injector(bool value) noexcept { has_injector_ = value; }
  [[nodiscard]] const obs::LocalHistogram& recovery_latency() const noexcept {
    return recovery_latency_;
  }

 private:
  bool has_injector_ = false;
  obs::LocalHistogram recovery_latency_;
};

/// The DispatchContext view over an EngineCore running one job: the job's
/// global ids coincide with its local TaskIds (job base 0), so the
/// policies see exactly the legacy queue contents.
class SimContext final : public DispatchContext {
 public:
  SimContext(EngineCore& core, ResourceType num_types)
      : core_(core), num_types_(num_types) {}

  [[nodiscard]] ResourceType num_types() const noexcept override {
    return num_types_;
  }
  [[nodiscard]] Time now() const noexcept override { return core_.now(); }
  [[nodiscard]] std::uint32_t free_processors(ResourceType alpha) const override {
    return core_.free_processors(alpha);
  }
  // Under a fault plan this is the *alive* count, so capacity loss is
  // visible to utilization-balancing policies; without one it equals the
  // static cluster width.
  [[nodiscard]] std::uint32_t total_processors(ResourceType alpha) const override {
    return core_.alive_processors(alpha);
  }
  [[nodiscard]] ReadySpan ready(ResourceType alpha) const override {
    return make_ready_span(core_.ready_tasks(alpha));
  }
  [[nodiscard]] Work queue_work(ResourceType alpha) const override {
    return core_.queue_work(alpha);
  }
  [[nodiscard]] Work remaining_work(TaskId task) const override {
    return core_.remaining_work(task);
  }
  void assign(ResourceType alpha, std::size_t index) override {
    core_.assign(alpha, index);
    invalidate_ready_spans();
  }

 private:
  EngineCore& core_;
  ResourceType num_types_;
};

}  // namespace

SimResult simulate(const KDag& dag, const Cluster& cluster, Scheduler& scheduler,
                   const SimOptions& options, ExecutionTrace* trace) {
  if (trace != nullptr) trace->clear();
  if (cluster.num_types() < dag.num_types()) {
    throw std::invalid_argument(
        "simulate: job uses more resource types than the cluster provides");
  }

  EngineCoreOptions core_options;
  core_options.mode = options.mode;
  core_options.record_trace = options.record_trace && trace != nullptr;
  core_options.faults = options.faults;
  core_options.trace = trace;
  core_options.bad_index_error = "Scheduler::dispatch assigned a bad queue index";
  core_options.no_processor_error =
      "Scheduler::dispatch assigned with no free processor";
  core_options.conservation_error =
      "Scheduler::dispatch left a free processor idle while a matching "
      "task was ready (policies must be work-conserving)";

  SimListener listener;
  EngineCore core(cluster, core_options, &listener);
  listener.set_has_injector(core.has_injector());
  core.add_job(dag, 0);
  SimContext context(core, dag.num_types());

  const bool observed = obs::enabled();
  obs::TraceSpan span("simulate", "sim");
  scheduler.prepare(dag, cluster);
  core.prepare();  // t=0 fault events take effect before the first dispatch

  obs::LocalHistogram ready_depth;
  obs::LocalHistogram dispatch_ns;
  const auto dispatch = [&] {
    if (!observed) {
      scheduler.dispatch(context);
      return;
    }
    std::size_t depth = 0;
    for (ResourceType a = 0; a < dag.num_types(); ++a) depth += core.queue_size(a);
    ready_depth.record(depth);
    if (core.decisions() % kDispatchSamplePeriod == 0) {
      const auto t0 = std::chrono::steady_clock::now();
      scheduler.dispatch(context);
      dispatch_ns.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    } else {
      scheduler.dispatch(context);
    }
  };
  core.drain(dispatch);

  SimResult result;
  result.completion_time = core.now();
  const auto busy = core.busy_ticks();
  result.busy_ticks_per_type.reserve(dag.num_types());
  for (ResourceType a = 0; a < dag.num_types(); ++a) {
    result.busy_ticks_per_type.push_back(busy[a].raw());
  }
  result.decision_points = core.decisions();
  result.preemptions = core.preemptions();
  result.faults = core.fault_stats();

  if (observed) {
    // One registry flush per run: a handful of mutex-guarded lookups and
    // relaxed atomic adds, amortized over the whole simulation.
    auto& registry = obs::Registry::global();
    registry.counter("sim.runs").add(1);
    registry.counter("sim.decisions").add(result.decision_points);
    registry.counter("sim.preemptions").add(result.preemptions);
    registry.histogram("sim.ready_depth").merge(ready_depth);
    registry.histogram("sim.dispatch_ns").merge(dispatch_ns);
    std::uint64_t dispatches = 0;
    for (ResourceType a = 0; a < dag.num_types(); ++a) {
      // Idle->busy processor transitions, i.e. task dispatches, per
      // type; completions mirror them one-to-one, so one counter tells
      // both sides of the busy/idle story.
      registry.counter("sim.type" + std::to_string(a) + ".busy_transitions")
          .add(core.dispatches(a));
      dispatches += core.dispatches(a);
    }
    registry.counter("sim.dispatches").add(dispatches);
    if (core.has_injector()) {
      registry.counter("sim.fault.failures").add(result.faults.failures);
      registry.counter("sim.fault.recoveries").add(result.faults.recoveries);
      registry.counter("sim.fault.slowdowns").add(result.faults.slowdowns);
      registry.counter("sim.fault.tasks_killed").add(result.faults.tasks_killed);
      registry.counter("sim.fault.work_discarded")
          .add(static_cast<std::uint64_t>(result.faults.work_discarded));
      registry.histogram("sim.fault.recovery_latency")
          .merge(listener.recovery_latency());
    }
  }
  return result;
}

}  // namespace fhs
