// The pre-EngineCore engine, frozen as a differential/benchmark
// reference.  See legacy_engine.hh for why this copy exists; the
// observability plumbing of the original was dropped (the adapter in
// engine.cc owns the obs contract now), everything else is verbatim.
#include "sim/legacy_engine.hh"

#include <algorithm>
#include <cassert>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>

namespace fhs {

namespace {

/// One task currently executing on a concrete processor.
struct Running {
  TaskId task;
  std::uint32_t processor;  // global id
  ResourceType type;
  Work remaining;
  Time started;  // when this continuous run began (for trace segments)
  // Fault-mode extras (inert at full speed without a plan):
  Work done = 0;             // units completed during this run
  Time credit = 0;           // ticks toward the next unit, in [0, factor)
  std::uint32_t factor = 1;  // ticks per unit on this processor right now
  bool pure = true;          // ran at factor 1 the whole time (plain trace add)
};

/// Engine state + the DispatchContext view handed to the policy.
class LegacySimulation final : public DispatchContext {
 public:
  LegacySimulation(const KDag& dag, const Cluster& cluster,
                   const SimOptions& options, ExecutionTrace* trace)
      : dag_(dag), cluster_(cluster), options_(options), trace_(trace) {
    if (cluster.num_types() < dag.num_types()) {
      throw std::invalid_argument(
          "simulate: job uses more resource types than the cluster provides");
    }
    const std::size_t n = dag.task_count();
    const ResourceType k = dag.num_types();
    remaining_parents_.resize(n);
    remaining_work_.resize(n);
    ready_seq_.assign(n, 0);
    last_proc_.assign(n, std::numeric_limits<std::uint32_t>::max());
    last_end_.assign(n, -1);
    for (TaskId v = 0; v < n; ++v) {
      remaining_parents_[v] = static_cast<std::uint32_t>(dag.parent_count(v));
      remaining_work_[v] = dag.work(v);
    }
    queues_.resize(k);
    queue_work_.assign(k, 0);
    free_procs_.resize(k);
    for (ResourceType a = 0; a < k; ++a) {
      queues_[a].reserve(dag.task_count(a));
      // Keep free lists sorted descending so pop_back yields the smallest
      // id (deterministic placement).
      const std::uint32_t p = cluster.processors(a);
      free_procs_[a].reserve(p);
      for (std::uint32_t i = p; i-- > 0;) {
        free_procs_[a].push_back(cluster.offset(a) + i);
      }
    }
    running_.reserve(cluster.total_processors());
    scratch_running_.reserve(cluster.total_processors());
    result_.busy_ticks_per_type.assign(k, 0);
    alive_per_type_.resize(k);
    for (ResourceType a = 0; a < k; ++a) alive_per_type_[a] = cluster.processors(a);
    if (options.faults != nullptr && !options.faults->empty()) {
      options.faults->validate_against(cluster);
      injector_.emplace(*options.faults, cluster.total_processors());
      proc_factor_.assign(cluster.total_processors(), 1);
      proc_down_.assign(cluster.total_processors(), 0);
      proc_down_since_.assign(cluster.total_processors(), 0);
    }
    for (TaskId root : dag.roots()) make_ready(root);
  }

  // --- DispatchContext ----------------------------------------------------
  [[nodiscard]] ResourceType num_types() const noexcept override {
    return dag_.num_types();
  }
  [[nodiscard]] Time now() const noexcept override { return now_; }
  [[nodiscard]] std::uint32_t free_processors(ResourceType alpha) const override {
    return static_cast<std::uint32_t>(free_procs_.at(alpha).size());
  }
  [[nodiscard]] std::uint32_t total_processors(ResourceType alpha) const override {
    return alive_per_type_.at(alpha);
  }
  [[nodiscard]] ReadySpan ready(ResourceType alpha) const override {
    return make_ready_span(queues_.at(alpha));
  }
  [[nodiscard]] Work queue_work(ResourceType alpha) const override {
    return queue_work_.at(alpha);
  }
  [[nodiscard]] Work remaining_work(TaskId task) const override {
    return remaining_work_.at(task);
  }

  void assign(ResourceType alpha, std::size_t index) override {
    auto& queue = queues_.at(alpha);
    if (index >= queue.size()) {
      throw std::logic_error("Scheduler::dispatch assigned a bad queue index");
    }
    auto& frees = free_procs_.at(alpha);
    if (frees.empty()) {
      throw std::logic_error("Scheduler::dispatch assigned with no free processor");
    }
    const TaskId task = queue[index];
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(index));
    invalidate_ready_spans();
    queue_work_[alpha] -= remaining_work_[task];
    std::uint32_t proc;
    const auto prev = std::find(frees.begin(), frees.end(), last_proc_[task]);
    if (prev != frees.end()) {
      proc = *prev;
      frees.erase(prev);
    } else {
      proc = frees.back();  // smallest free id (list kept descending)
      frees.pop_back();
    }
    if (remaining_work_[task] < dag_.work(task) &&
        (proc != last_proc_[task] || now_ != last_end_[task])) {
      ++result_.preemptions;
    }
    Running run{task, proc, alpha, remaining_work_[task], now_};
    if (injector_.has_value()) {
      run.factor = proc_factor_[proc];
      run.pure = run.factor == 1;
    }
    running_.push_back(run);
  }

  // --- main loop ------------------------------------------------------------
  SimResult run(Scheduler& scheduler) {
    scheduler.prepare(dag_, cluster_);
    apply_fault_events();  // t=0 events take effect before the first dispatch
    const std::size_t n = dag_.task_count();
    while (completed_ < n) {
      scheduler.dispatch(*this);
      ++result_.decision_points;
      enforce_work_conservation();
      if (running_.empty()) {
        if (injector_.has_value() &&
            injector_->next_event_time() != kNoFaultEvent) {
          now_ = injector_->next_event_time();
          apply_fault_events();
          continue;
        }
        if (injector_.has_value()) {
          throw std::runtime_error(
              "simulate: fault plan stranded " +
              std::to_string(n - completed_) +
              " outstanding task(s): every matching processor is failed and "
              "no further recovery is scheduled");
        }
        throw std::logic_error("simulate: no runnable task but job incomplete");
      }
      advance();
      if (options_.mode == ExecutionMode::kPreemptive) recall_running();
    }
    result_.completion_time = now_;
    return std::move(result_);
  }

 private:
  void make_ready(TaskId task) {
    const ResourceType alpha = dag_.type(task);
    ready_seq_[task] = next_seq_++;
    queues_[alpha].push_back(task);
    queue_work_[alpha] += remaining_work_[task];
    invalidate_ready_spans();
  }

  /// Re-inserts a preempted task keeping the queue ordered by the
  /// sequence in which tasks first became ready (FIFO semantics).
  void requeue(TaskId task) {
    const ResourceType alpha = dag_.type(task);
    auto& queue = queues_[alpha];
    const auto pos = std::lower_bound(
        queue.begin(), queue.end(), ready_seq_[task],
        [this](TaskId lhs, std::uint64_t seq) { return ready_seq_[lhs] < seq; });
    queue.insert(pos, task);
    queue_work_[alpha] += remaining_work_[task];
    invalidate_ready_spans();
  }

  void enforce_work_conservation() const {
    for (ResourceType a = 0; a < num_types(); ++a) {
      if (!free_procs_[a].empty() && !queues_[a].empty()) {
        throw std::logic_error(
            "Scheduler::dispatch left a free processor idle while a matching "
            "task was ready (policies must be work-conserving)");
      }
    }
  }

  /// Advances to the next event -- the earliest task completion at
  /// current rates, or the next fault-plan event, whichever is sooner.
  void advance() {
    Time dt = std::numeric_limits<Time>::max();
    for (const Running& r : running_) {
      dt = std::min(dt, static_cast<Time>(r.factor) * r.remaining - r.credit);
    }
    if (injector_.has_value() && injector_->next_event_time() != kNoFaultEvent) {
      dt = std::min(dt, injector_->next_event_time() - now_);
    }
    assert(dt > 0);
    now_ += dt;
    for (Running& r : running_) {
      result_.busy_ticks_per_type[r.type] += dt;
      const Work units = (r.credit + dt) / r.factor;
      r.credit = (r.credit + dt) % r.factor;
      r.done += units;
      r.remaining -= units;
      remaining_work_[r.task] -= units;
    }
    // Complete finished tasks in processor order (deterministic).
    std::sort(running_.begin(), running_.end(),
              [](const Running& a, const Running& b) { return a.processor < b.processor; });
    scratch_running_.clear();
    for (const Running& r : running_) {
      if (r.remaining > 0) {
        scratch_running_.push_back(r);
        continue;
      }
      record_segment(r);
      release_processor(r);
      ++completed_;
      for (TaskId child : dag_.children(r.task)) {
        assert(remaining_parents_[child] > 0);
        if (--remaining_parents_[child] == 0) make_ready(child);
      }
    }
    running_.swap(scratch_running_);
    apply_fault_events();
  }

  /// Preemptive mode: return every running task to its queue so the next
  /// dispatch reconsiders the full allocation.
  void recall_running() {
    for (const Running& r : running_) {
      record_segment(r);
      release_processor(r);
      last_proc_[r.task] = r.processor;
      last_end_[r.task] = now_;
      requeue(r.task);
    }
    running_.clear();
  }

  void record_segment(const Running& r, bool killed = false) {
    if (trace_ == nullptr || !options_.record_trace || now_ <= r.started) return;
    if (r.pure && !killed) {
      trace_->add(r.task, r.processor, r.started, now_);
    } else {
      trace_->add_fault_segment(r.task, r.processor, r.started, now_, r.done,
                                killed);
    }
  }

  // --- fault plumbing -------------------------------------------------------
  void apply_fault_events() {
    if (!injector_.has_value()) return;
    for (const FaultEvent& event : injector_->take_events_until(now_)) {
      switch (event.kind) {
        case FaultKind::kFail:
          on_fail(event);
          break;
        case FaultKind::kRecover:
          on_recover(event);
          break;
        case FaultKind::kSlow:
          on_slow(event);
          break;
      }
    }
  }

  void on_fail(const FaultEvent& event) {
    const std::uint32_t proc = event.processor;
    ++result_.faults.failures;
    const ResourceType alpha = cluster_.type_of_processor(proc);
    assert(alive_per_type_[alpha] > 0);
    --alive_per_type_[alpha];
    proc_down_[proc] = 1;
    proc_down_since_[proc] = event.at;
    proc_factor_[proc] = 1;  // a recovered processor restarts at full speed
    for (std::size_t i = 0; i < running_.size(); ++i) {
      if (running_[i].processor != proc) continue;
      const Running victim = running_[i];
      running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
      record_segment(victim, /*killed=*/true);
      ++result_.faults.tasks_killed;
      result_.faults.work_discarded += dag_.work(victim.task) -
                                       remaining_work_[victim.task];
      remaining_work_[victim.task] = dag_.work(victim.task);
      make_ready(victim.task);
      return;
    }
    // Idle processor: pull it out of its free list.
    auto& frees = free_procs_[alpha];
    const auto pos = std::find(frees.begin(), frees.end(), proc);
    assert(pos != frees.end());
    frees.erase(pos);
  }

  void on_recover(const FaultEvent& event) {
    const std::uint32_t proc = event.processor;
    if (proc_down_[proc] != 0) {
      ++result_.faults.recoveries;
      proc_down_[proc] = 0;
      proc_factor_[proc] = 1;
      const ResourceType alpha = cluster_.type_of_processor(proc);
      ++alive_per_type_[alpha];
      auto& frees = free_procs_[alpha];
      const auto pos = std::lower_bound(frees.begin(), frees.end(), proc,
                                        std::greater<std::uint32_t>{});
      frees.insert(pos, proc);
      return;
    }
    // Recovery from a slowdown: back to full speed in place.
    rescale_processor(proc, 1);
  }

  void on_slow(const FaultEvent& event) {
    ++result_.faults.slowdowns;
    rescale_processor(event.processor, event.factor);
  }

  void rescale_processor(std::uint32_t proc, std::uint32_t new_factor) {
    const std::uint32_t old_factor = proc_factor_[proc];
    proc_factor_[proc] = new_factor;
    for (Running& r : running_) {
      if (r.processor != proc) continue;
      // Frozen differential oracle: stays on raw arithmetic by design.
      // fhs-lint: allow(time-arith)
      r.credit = r.credit * new_factor / old_factor;
      r.factor = new_factor;
      if (new_factor != 1) r.pure = false;
      return;
    }
  }

  void release_processor(const Running& r) {
    auto& frees = free_procs_[r.type];
    // Insert keeping descending order.
    const auto pos = std::lower_bound(frees.begin(), frees.end(), r.processor,
                                      std::greater<std::uint32_t>{});
    frees.insert(pos, r.processor);
  }

  const KDag& dag_;
  const Cluster& cluster_;
  SimOptions options_;
  ExecutionTrace* trace_;

  Time now_ = 0;
  std::size_t completed_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<std::uint32_t> remaining_parents_;
  std::vector<Work> remaining_work_;
  std::vector<std::uint64_t> ready_seq_;
  std::vector<std::uint32_t> last_proc_;  // previous processor (affinity)
  std::vector<Time> last_end_;            // when the previous run ended
  std::vector<std::vector<TaskId>> queues_;
  std::vector<Work> queue_work_;
  std::vector<std::vector<std::uint32_t>> free_procs_;
  std::vector<Running> running_;
  std::vector<Running> scratch_running_;  // reused by advance(); never shrinks
  SimResult result_;

  // Fault state; engaged only when options_.faults is a non-empty plan.
  std::optional<FaultInjector> injector_;
  std::vector<std::uint32_t> alive_per_type_;
  std::vector<std::uint32_t> proc_factor_;  // ticks per unit of work
  std::vector<std::uint8_t> proc_down_;
  std::vector<Time> proc_down_since_;
};

}  // namespace

SimResult legacy_simulate(const KDag& dag, const Cluster& cluster,
                          Scheduler& scheduler, const SimOptions& options,
                          ExecutionTrace* trace) {
  if (trace != nullptr) trace->clear();
  LegacySimulation sim(dag, cluster, options, trace);
  return sim.run(scheduler);
}

}  // namespace fhs
