#include "sim/schedule_checker.hh"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>

#include "fault/fault_injector.hh"

namespace fhs {

namespace {
std::string describe(const TraceSegment& seg) {
  std::ostringstream out;
  out << "task " << seg.task << " on p" << seg.processor << " [" << seg.start << ", "
      << seg.end << ")";
  if (seg.work_done >= 0) out << " work=" << seg.work_done;
  if (seg.killed) out << " killed";
  return out.str();
}
}  // namespace

std::vector<std::string> check_schedule(const KDag& dag, const Cluster& cluster,
                                        const ExecutionTrace& trace,
                                        const CheckOptions& options) {
  std::vector<std::string> violations;
  const auto& segments = trace.segments();

  const bool faulty = options.faults != nullptr && !options.faults->empty();
  if (faulty &&
      options.faults->max_processor() >= cluster.total_processors()) {
    violations.push_back("fault plan names processor p" +
                         std::to_string(options.faults->max_processor()) +
                         " but the cluster has only " +
                         std::to_string(cluster.total_processors()) +
                         " processors");
    return violations;
  }
  std::optional<FaultTimeline> timeline;
  if (faulty) timeline.emplace(*options.faults, cluster.total_processors());

  if (options.cancelled_tasks != nullptr &&
      options.cancelled_tasks->size() != dag.task_count()) {
    violations.push_back("cancelled_tasks bitmap has " +
                         std::to_string(options.cancelled_tasks->size()) +
                         " entries for " + std::to_string(dag.task_count()) +
                         " tasks");
    return violations;
  }
  const auto cancelled = [&options](TaskId v) {
    return options.cancelled_tasks != nullptr && (*options.cancelled_tasks)[v] != 0;
  };

  // --- 1. basic sanity & type matching ------------------------------------
  for (const TraceSegment& seg : segments) {
    if (seg.task >= dag.task_count()) {
      violations.push_back("segment references unknown " + describe(seg));
      continue;
    }
    if (seg.start >= seg.end || seg.start < 0) {
      violations.push_back("segment has bad interval: " + describe(seg));
    }
    if (seg.work() < 0 || seg.work() > seg.end - seg.start) {
      violations.push_back("segment work outside [0, duration]: " + describe(seg));
    }
    if (!faulty && (seg.killed || seg.work_done >= 0) && !cancelled(seg.task)) {
      violations.push_back("fault-era segment in a fault-free run: " +
                           describe(seg));
    }
    if (seg.processor >= cluster.total_processors()) {
      violations.push_back("segment uses unknown processor: " + describe(seg));
      continue;
    }
    if (cluster.type_of_processor(seg.processor) != dag.type(seg.task)) {
      violations.push_back("type mismatch (task type " +
                           std::to_string(dag.type(seg.task)) + "): " + describe(seg));
    }
  }
  if (!violations.empty()) return violations;  // later checks assume sane ids

  // --- 7..9. fault invariants (replayed from the plan, not the engine) ----
  if (faulty) {
    for (const TraceSegment& seg : segments) {
      if (timeline->down_overlaps(seg.processor, seg.start, seg.end)) {
        violations.push_back("segment runs on a failed processor: " +
                             describe(seg));
      }
      if (seg.killed && !cancelled(seg.task) &&
          !timeline->fails_at(seg.processor, seg.end)) {
        violations.push_back(
            "killed segment does not end at a failure of its processor: " +
            describe(seg));
      }
      const std::uint32_t max_factor =
          timeline->max_factor_in(seg.processor, seg.start, seg.end);
      const Work work = seg.work();
      const Time duration = seg.end - seg.start;
      if (max_factor == 1) {
        // Full speed throughout: every tick completes one unit.
        if (work != duration) {
          violations.push_back("full-speed segment where work != duration: " +
                               describe(seg));
        }
      } else {
        const auto changes = static_cast<Work>(
            timeline->rate_changes_in(seg.processor, seg.start, seg.end));
        // Sub-unit credit can be forfeited once per run plus once per
        // rate change, hence the slack of (1 + changes) units.
        if (work > duration ||
            duration > static_cast<Time>(max_factor) * (work + 1 + changes)) {
          violations.push_back(
              "segment duration inconsistent with slowdown factor " +
              std::to_string(max_factor) + ": " + describe(seg));
        }
      }
    }
    if (!violations.empty()) return violations;
  }

  // --- 2. no overlap per processor ----------------------------------------
  {
    std::vector<TraceSegment> by_proc(segments.begin(), segments.end());
    std::sort(by_proc.begin(), by_proc.end(), [](const auto& a, const auto& b) {
      return std::tie(a.processor, a.start) < std::tie(b.processor, b.start);
    });
    for (std::size_t i = 1; i < by_proc.size(); ++i) {
      const auto& prev = by_proc[i - 1];
      const auto& cur = by_proc[i];
      if (prev.processor == cur.processor && cur.start < prev.end) {
        violations.push_back("overlap on p" + std::to_string(cur.processor) + ": " +
                             describe(prev) + " vs " + describe(cur));
      }
    }
  }

  // --- 3. per-type concurrency (sweep line) -------------------------------
  for (ResourceType alpha = 0; alpha < dag.num_types(); ++alpha) {
    if (alpha >= cluster.num_types()) break;
    std::map<Time, int> delta;  // +1 at start, -1 at end
    for (const TraceSegment& seg : segments) {
      if (dag.type(seg.task) != alpha) continue;
      ++delta[seg.start];
      --delta[seg.end];
    }
    int active = 0;
    for (const auto& [time, change] : delta) {
      active += change;
      if (active > static_cast<int>(cluster.processors(alpha))) {
        violations.push_back("type " + std::to_string(alpha) + " runs " +
                             std::to_string(active) + " tasks at t=" +
                             std::to_string(time) + " but has only " +
                             std::to_string(cluster.processors(alpha)) + " processors");
        break;  // one report per type is enough
      }
    }
  }

  // --- 4. work conservation per task, 5. precedence, 6. contiguity --------
  // Killed segments are discarded attempts: they count for nothing (work,
  // contiguity, completion evidence) except that they too must respect
  // precedence -- an attempt may not start before the task's parents
  // finished.
  std::vector<Work> executed(dag.task_count(), 0);
  std::vector<Time> first_start(dag.task_count(), std::numeric_limits<Time>::max());
  std::vector<Time> last_end(dag.task_count(), -1);  // non-killed only
  std::vector<std::size_t> segment_count(dag.task_count(), 0);  // non-killed
  for (const TraceSegment& seg : segments) {
    first_start[seg.task] = std::min(first_start[seg.task], seg.start);
    if (seg.killed) continue;
    executed[seg.task] += seg.work();
    last_end[seg.task] = std::max(last_end[seg.task], seg.end);
    ++segment_count[seg.task];
  }
  for (TaskId v = 0; v < dag.task_count(); ++v) {
    if (cancelled(v)) {
      // A cancelled job's task either completed before the cancel or ran
      // not at all; partial credit would mean the engine leaked work.
      if (executed[v] != 0 && executed[v] != dag.work(v)) {
        violations.push_back("cancelled task " + std::to_string(v) +
                             " partially executed " + std::to_string(executed[v]) +
                             " of " + std::to_string(dag.work(v)) + " ticks");
      }
    } else if (executed[v] != dag.work(v)) {
      violations.push_back("task " + std::to_string(v) + " executed " +
                           std::to_string(executed[v]) + " ticks, expected " +
                           std::to_string(dag.work(v)));
    }
    if (options.require_non_preemptive && segment_count[v] > 1) {
      violations.push_back("task " + std::to_string(v) + " split into " +
                           std::to_string(segment_count[v]) +
                           " segments in non-preemptive mode");
    }
    if (options.require_non_preemptive && segment_count[v] == 1 && !faulty &&
        last_end[v] - first_start[v] != dag.work(v)) {
      // Under a fault plan killed attempts precede the real run and
      // slowdowns stretch it; invariant 9 already pins each segment's
      // duration, so the full-speed span equality only applies fault-free.
      violations.push_back("task " + std::to_string(v) + " not contiguous");
    }
    for (TaskId parent : dag.parents(v)) {
      if (first_start[v] == std::numeric_limits<Time>::max() ||
          segment_count[parent] == 0) {
        continue;
      }
      if (first_start[v] < last_end[parent]) {
        violations.push_back("task " + std::to_string(v) + " starts at " +
                             std::to_string(first_start[v]) + " before parent " +
                             std::to_string(parent) + " finishes at " +
                             std::to_string(last_end[parent]));
      }
    }
  }
  return violations;
}

}  // namespace fhs
