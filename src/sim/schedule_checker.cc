#include "sim/schedule_checker.hh"

#include <algorithm>
#include <map>
#include <sstream>

namespace fhs {

namespace {
std::string describe(const TraceSegment& seg) {
  std::ostringstream out;
  out << "task " << seg.task << " on p" << seg.processor << " [" << seg.start << ", "
      << seg.end << ")";
  return out.str();
}
}  // namespace

std::vector<std::string> check_schedule(const KDag& dag, const Cluster& cluster,
                                        const ExecutionTrace& trace,
                                        const CheckOptions& options) {
  std::vector<std::string> violations;
  const auto& segments = trace.segments();

  // --- 1. basic sanity & type matching ------------------------------------
  for (const TraceSegment& seg : segments) {
    if (seg.task >= dag.task_count()) {
      violations.push_back("segment references unknown " + describe(seg));
      continue;
    }
    if (seg.start >= seg.end || seg.start < 0) {
      violations.push_back("segment has bad interval: " + describe(seg));
    }
    if (seg.processor >= cluster.total_processors()) {
      violations.push_back("segment uses unknown processor: " + describe(seg));
      continue;
    }
    if (cluster.type_of_processor(seg.processor) != dag.type(seg.task)) {
      violations.push_back("type mismatch (task type " +
                           std::to_string(dag.type(seg.task)) + "): " + describe(seg));
    }
  }
  if (!violations.empty()) return violations;  // later checks assume sane ids

  // --- 2. no overlap per processor ----------------------------------------
  {
    std::vector<TraceSegment> by_proc(segments.begin(), segments.end());
    std::sort(by_proc.begin(), by_proc.end(), [](const auto& a, const auto& b) {
      return std::tie(a.processor, a.start) < std::tie(b.processor, b.start);
    });
    for (std::size_t i = 1; i < by_proc.size(); ++i) {
      const auto& prev = by_proc[i - 1];
      const auto& cur = by_proc[i];
      if (prev.processor == cur.processor && cur.start < prev.end) {
        violations.push_back("overlap on p" + std::to_string(cur.processor) + ": " +
                             describe(prev) + " vs " + describe(cur));
      }
    }
  }

  // --- 3. per-type concurrency (sweep line) -------------------------------
  for (ResourceType alpha = 0; alpha < dag.num_types(); ++alpha) {
    if (alpha >= cluster.num_types()) break;
    std::map<Time, int> delta;  // +1 at start, -1 at end
    for (const TraceSegment& seg : segments) {
      if (dag.type(seg.task) != alpha) continue;
      ++delta[seg.start];
      --delta[seg.end];
    }
    int active = 0;
    for (const auto& [time, change] : delta) {
      active += change;
      if (active > static_cast<int>(cluster.processors(alpha))) {
        violations.push_back("type " + std::to_string(alpha) + " runs " +
                             std::to_string(active) + " tasks at t=" +
                             std::to_string(time) + " but has only " +
                             std::to_string(cluster.processors(alpha)) + " processors");
        break;  // one report per type is enough
      }
    }
  }

  // --- 4. work conservation per task, 5. precedence, 6. contiguity --------
  std::vector<Work> executed(dag.task_count(), 0);
  std::vector<Time> first_start(dag.task_count(), std::numeric_limits<Time>::max());
  std::vector<Time> last_end(dag.task_count(), -1);
  std::vector<std::size_t> segment_count(dag.task_count(), 0);
  for (const TraceSegment& seg : segments) {
    executed[seg.task] += seg.end - seg.start;
    first_start[seg.task] = std::min(first_start[seg.task], seg.start);
    last_end[seg.task] = std::max(last_end[seg.task], seg.end);
    ++segment_count[seg.task];
  }
  for (TaskId v = 0; v < dag.task_count(); ++v) {
    if (executed[v] != dag.work(v)) {
      violations.push_back("task " + std::to_string(v) + " executed " +
                           std::to_string(executed[v]) + " ticks, expected " +
                           std::to_string(dag.work(v)));
    }
    if (options.require_non_preemptive && segment_count[v] > 1) {
      violations.push_back("task " + std::to_string(v) + " split into " +
                           std::to_string(segment_count[v]) +
                           " segments in non-preemptive mode");
    }
    if (options.require_non_preemptive && segment_count[v] == 1 &&
        last_end[v] - first_start[v] != dag.work(v)) {
      violations.push_back("task " + std::to_string(v) + " not contiguous");
    }
    for (TaskId parent : dag.parents(v)) {
      if (segment_count[v] == 0 || segment_count[parent] == 0) continue;
      if (first_start[v] < last_end[parent]) {
        violations.push_back("task " + std::to_string(v) + " starts at " +
                             std::to_string(first_start[v]) + " before parent " +
                             std::to_string(parent) + " finishes at " +
                             std::to_string(last_end[parent]));
      }
    }
  }
  return violations;
}

}  // namespace fhs
