// Frozen pre-EngineCore single-job engine.
//
// This is the linear-scan event loop sim/engine.cc shipped before the
// core/ redesign, kept verbatim (minus observability plumbing) for two
// consumers:
//
//  * tests/core_differential_test.cc -- proves the EngineCore adapter
//    produces byte-identical traces and results against this reference
//    over every registered policy, workload family, and fault plan;
//  * tools/perf_microbench -- the events/sec baseline the headline
//    speedup in BENCH_engine.json is measured against.
//
// Do not extend this file; new engine work goes through core/.
#pragma once

#include "sim/engine.hh"

namespace fhs {

/// Identical contract to simulate() (sim/engine.hh), executed by the
/// frozen legacy engine.
SimResult legacy_simulate(const KDag& dag, const Cluster& cluster,
                          Scheduler& scheduler, const SimOptions& options = {},
                          ExecutionTrace* trace = nullptr);

}  // namespace fhs
