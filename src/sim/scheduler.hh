// Abstract scheduler interface used by the simulation engine.
//
// The engine owns all execution state (ready queues, remaining work, free
// processors) and exposes a restricted view through DispatchContext.  A
// scheduler's job at each decision point is to assign ready tasks to free
// processors; the engine enforces work conservation afterwards (no free
// processor may be left idle while a matching ready task exists -- every
// policy in the paper is work-conserving, per the greedy rule of §III).
//
// Information boundary (paper §II): an *online* policy may only look at
// queue membership and sizes -- it must not read task works or queue work
// totals ("The work of an executing or a ready task is unknown to the
// online scheduler").  Offline policies may precompute anything from the
// full K-DAG in prepare().  The engine cannot mechanically stop a policy
// from calling queue_work(), so the convention is documented here and the
// online policies in sched/ are written against it.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "graph/kdag.hh"
#include "machine/cluster.hh"

namespace fhs {

/// Diagnostic abort for a ReadySpan read after invalidation (defined in
/// sim/scheduler.cc so the cold path stays out of line).
[[noreturn]] void ready_span_stale_abort() noexcept;

/// View of one ready queue, returned by DispatchContext::ready().
///
/// The underlying storage is mutated by assign(), so a ReadySpan is only
/// valid until the next assign() on the same context -- the classic
/// span-invalidation footgun.  Debug builds carry a generation snapshot
/// and abort on any read through a stale span; release builds compile
/// down to a plain std::span with zero overhead.
class ReadySpan {
 public:
  ReadySpan() = default;
#ifndef NDEBUG
  ReadySpan(std::span<const TaskId> tasks, const std::uint64_t* live_generation,
            std::uint64_t snapshot) noexcept
      : tasks_(tasks), live_generation_(live_generation), snapshot_(snapshot) {}
#else
  explicit ReadySpan(std::span<const TaskId> tasks) noexcept : tasks_(tasks) {}
#endif

  [[nodiscard]] std::size_t size() const noexcept {
    check();
    return tasks_.size();
  }
  [[nodiscard]] bool empty() const noexcept {
    check();
    return tasks_.empty();
  }
  [[nodiscard]] TaskId operator[](std::size_t index) const noexcept {
    check();
    return tasks_[index];
  }
  [[nodiscard]] TaskId front() const noexcept {
    check();
    return tasks_.front();
  }
  [[nodiscard]] TaskId back() const noexcept {
    check();
    return tasks_.back();
  }
  [[nodiscard]] const TaskId* begin() const noexcept {
    check();
    return tasks_.data();
  }
  [[nodiscard]] const TaskId* end() const noexcept {
    check();
    return tasks_.data() + tasks_.size();
  }

 private:
  void check() const noexcept {
#ifndef NDEBUG
    if (live_generation_ != nullptr && *live_generation_ != snapshot_) {
      ready_span_stale_abort();
    }
#endif
  }

  std::span<const TaskId> tasks_;
#ifndef NDEBUG
  const std::uint64_t* live_generation_ = nullptr;
  std::uint64_t snapshot_ = 0;
#endif
};

/// Engine-provided view of the decision point.  Spans returned by ready()
/// are invalidated by assign(); re-fetch after every assignment (debug
/// builds abort on reads through a stale ReadySpan).
class DispatchContext {
 public:
  virtual ~DispatchContext() = default;

  [[nodiscard]] virtual ResourceType num_types() const noexcept = 0;
  [[nodiscard]] virtual Time now() const noexcept = 0;

  /// Free alpha-processors at this decision point.
  [[nodiscard]] virtual std::uint32_t free_processors(ResourceType alpha) const = 0;
  /// Total alpha-processors, P_alpha.
  [[nodiscard]] virtual std::uint32_t total_processors(ResourceType alpha) const = 0;

  /// Ready alpha-tasks, oldest first (FIFO order of becoming ready).
  /// Implementations wrap their storage with make_ready_span() and call
  /// invalidate_ready_spans() from assign().
  [[nodiscard]] virtual ReadySpan ready(ResourceType alpha) const = 0;

  /// Total *remaining* work of ready alpha-tasks, l_alpha (offline info;
  /// online policies must not call this).
  [[nodiscard]] virtual Work queue_work(ResourceType alpha) const = 0;

  /// Remaining work of a ready task (equals full work unless the task was
  /// preempted).  Offline info.
  [[nodiscard]] virtual Work remaining_work(TaskId task) const = 0;

  /// Assigns the ready alpha-task at position `index` of ready(alpha) to a
  /// free alpha-processor.  Requires free_processors(alpha) > 0.
  virtual void assign(ResourceType alpha, std::size_t index) = 0;

 protected:
  /// Wraps queue storage in a ReadySpan carrying the current generation.
  [[nodiscard]] ReadySpan make_ready_span(std::span<const TaskId> tasks) const noexcept {
#ifndef NDEBUG
    return ReadySpan(tasks, &ready_generation_, ready_generation_);
#else
    return ReadySpan(tasks);
#endif
  }

  /// Implementations call this from every mutation that can reorder or
  /// reallocate queue storage (assign, requeue); outstanding ReadySpans
  /// become stale and debug builds abort on their next read.
  void invalidate_ready_spans() noexcept { ++ready_generation_; }

 private:
  std::uint64_t ready_generation_ = 0;
};

/// Scheduling policy.  One instance is used for one simulation at a time
/// (prepare() resets per-job state), but may be reused sequentially.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Human-readable policy name (used in reports and the registry).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once before simulation starts.  Offline policies precompute
  /// task priorities / descendant tables here.
  virtual void prepare(const KDag& dag, const Cluster& cluster) = 0;

  /// Called at every decision point: assign ready tasks to free
  /// processors until, for every type, either no processor is free or no
  /// task is ready.
  virtual void dispatch(DispatchContext& ctx) = 0;
};

}  // namespace fhs
