// Abstract scheduler interface used by the simulation engine.
//
// The engine owns all execution state (ready queues, remaining work, free
// processors) and exposes a restricted view through DispatchContext.  A
// scheduler's job at each decision point is to assign ready tasks to free
// processors; the engine enforces work conservation afterwards (no free
// processor may be left idle while a matching ready task exists -- every
// policy in the paper is work-conserving, per the greedy rule of §III).
//
// Information boundary (paper §II): an *online* policy may only look at
// queue membership and sizes -- it must not read task works or queue work
// totals ("The work of an executing or a ready task is unknown to the
// online scheduler").  Offline policies may precompute anything from the
// full K-DAG in prepare().  The engine cannot mechanically stop a policy
// from calling queue_work(), so the convention is documented here and the
// online policies in sched/ are written against it.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "graph/kdag.hh"
#include "machine/cluster.hh"

namespace fhs {

/// Engine-provided view of the decision point.  Spans returned by ready()
/// are invalidated by assign(); re-fetch after every assignment.
class DispatchContext {
 public:
  virtual ~DispatchContext() = default;

  [[nodiscard]] virtual ResourceType num_types() const noexcept = 0;
  [[nodiscard]] virtual Time now() const noexcept = 0;

  /// Free alpha-processors at this decision point.
  [[nodiscard]] virtual std::uint32_t free_processors(ResourceType alpha) const = 0;
  /// Total alpha-processors, P_alpha.
  [[nodiscard]] virtual std::uint32_t total_processors(ResourceType alpha) const = 0;

  /// Ready alpha-tasks, oldest first (FIFO order of becoming ready).
  [[nodiscard]] virtual std::span<const TaskId> ready(ResourceType alpha) const = 0;

  /// Total *remaining* work of ready alpha-tasks, l_alpha (offline info;
  /// online policies must not call this).
  [[nodiscard]] virtual Work queue_work(ResourceType alpha) const = 0;

  /// Remaining work of a ready task (equals full work unless the task was
  /// preempted).  Offline info.
  [[nodiscard]] virtual Work remaining_work(TaskId task) const = 0;

  /// Assigns the ready alpha-task at position `index` of ready(alpha) to a
  /// free alpha-processor.  Requires free_processors(alpha) > 0.
  virtual void assign(ResourceType alpha, std::size_t index) = 0;
};

/// Scheduling policy.  One instance is used for one simulation at a time
/// (prepare() resets per-job state), but may be reused sequentially.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Human-readable policy name (used in reports and the registry).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once before simulation starts.  Offline policies precompute
  /// task priorities / descendant tables here.
  virtual void prepare(const KDag& dag, const Cluster& cluster) = 0;

  /// Called at every decision point: assign ready tasks to free
  /// processors until, for every type, either no processor is free or no
  /// task is ready.
  virtual void dispatch(DispatchContext& ctx) = 0;
};

}  // namespace fhs
