// Always-on concurrent scheduling service (ROADMAP north star: the
// first piece of the repo that behaves like a server, not a script).
//
// SchedulerService wraps MultiJobEngine in a worker thread:
//
//   submitters ──submit(KDag)──▶ admission control ──▶ inbox
//                                                        │ folded at
//                                                        ▼ epoch edges
//                               worker: MultiJobEngine.advance_until()
//                                                        │
//   pollers   ◀──poll(ticket)── ticket table ◀── completions
//
// Virtual time advances in bounded epoch-length slices; every
// submission accepted between two slices is folded into the engine at
// the next boundary, so it lands mid-stream exactly like a JobArrival
// in the batch simulator.  Overload degrades gracefully through the
// admission policy (reject or defer), live counters are readable
// lock-free via stats(), and an optional journal records every fold so
// replay_journal() can re-run the session deterministically.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <queue>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "machine/cluster.hh"
#include "multijob/multijob.hh"
#include "rt/backoff.hh"
#include "service/admission.hh"
#include "service/journal.hh"
#include "service/service_stats.hh"
#include "support/mutex.hh"
#include "support/thread_annotations.hh"

namespace fhs {

/// Raw-Time convenience over rt/backoff.hh (the strong-typed home of
/// the clamp; kMaxBackoffShift lives there too).  The service configs
/// carry raw ticks, so this is the boundary adapter.
[[nodiscard]] constexpr Time backoff_for_attempt(Time base,
                                                 std::uint32_t attempts) noexcept {
  return backoff_for_attempt(VirtualDur{base}, attempts).raw();
}

struct ServiceConfig {
  /// Stream policy: "kgreedy" | "fcfs" | "srjf" | "mqb" | "edf" | "llf"
  /// | "gang" (the deadline family lives in rt/stream_rt.hh).
  std::string policy = "mqb";
  /// Virtual ticks per worker slice; new submissions fold in at slice
  /// boundaries, so this bounds a job's admission latency in virtual time.
  Time epoch_length = 100;
  AdmissionConfig admission;
  /// Optional record stream (caller keeps it alive; see journal.hh).
  std::ostream* journal = nullptr;
  /// Optional fault plan driven inside the engine (not owned; must
  /// outlive the service).  nullptr or empty keeps the engine fault-free.
  const FaultPlan* faults = nullptr;
  /// Per-attempt deadline in virtual ticks: an attempt still unfinished
  /// `deadline` ticks after it entered the engine is cancelled (its
  /// running tasks killed, queued tasks withdrawn).  0 disables.
  Time deadline = 0;
  /// Attempts per job (>= 1).  After a timeout, the job re-folds with
  /// backoff until attempts run out; with max_attempts == 1 a timeout is
  /// terminal (kTimedOut).
  std::uint32_t max_attempts = 1;
  /// Virtual ticks before attempt n+1 enters the engine, doubling per
  /// retry: attempt n+1 arrives at cancel time + retry_backoff *
  /// 2^min(n-1, kMaxBackoffShift) (see backoff_for_attempt for the
  /// clamp).  0 re-folds immediately.
  Time retry_backoff = 0;
  /// Per-processor power model (engine_core.hh); engaging it makes the
  /// engine integrate energy, surfaced through stats() as energy_milli.
  std::optional<EnergyModel> energy;
};

enum class JobState : std::uint8_t {
  kQueued,     ///< accepted, waiting for the next epoch boundary
  kScheduled,  ///< folded into the engine, executing or queued inside it
  kCompleted,
  kTimedOut,          ///< single attempt cancelled at its deadline
  kRetriesExhausted,  ///< every allowed attempt timed out
};

struct JobTicket {
  std::uint64_t id = 0;

  friend bool operator==(const JobTicket&, const JobTicket&) = default;
};

struct JobStatus {
  JobState state = JobState::kQueued;
  /// Virtual time the job's current attempt entered the engine (-1 while
  /// still queued; for a retry, the retry's arrival).
  Time folded_epoch = -1;
  /// Absolute virtual completion time (-1 until terminal; for a timed-out
  /// job, the time the final attempt was cancelled).
  Time completion = -1;
  /// completion - folded_epoch (-1 unless kCompleted).
  Time flow_time = -1;
  /// Attempts started so far (1 for the first fold; 0 while queued).
  std::uint32_t attempts = 0;
};

class SchedulerService {
 public:
  SchedulerService(const Cluster& cluster, ServiceConfig config);
  ~SchedulerService();
  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// Thread-safe.  Returns the job's ticket, or nullopt when admission
  /// control rejects it (kReject) or the service is shutting down.
  /// Under kDefer, blocks until the job fits.
  std::optional<JobTicket> submit(KDag dag) FHS_EXCLUDES(mutex_);

  /// Thread-safe.  Throws std::out_of_range for a ticket submit() never
  /// returned.
  [[nodiscard]] JobStatus poll(JobTicket ticket) const FHS_EXCLUDES(mutex_);

  /// Blocks until every accepted job has completed.
  void drain() FHS_EXCLUDES(mutex_);

  /// Drains, stops the worker, and joins it.  Idempotent and safe to
  /// call from several threads at once (the destructor may race an
  /// explicit call); called by the destructor.  Subsequent submit()
  /// calls return nullopt.
  void shutdown() FHS_EXCLUDES(mutex_, join_mutex_);

  /// Lock-free snapshot of live counters (see service_stats.hh).
  [[nodiscard]] ServiceStats stats() const;

  [[nodiscard]] const Cluster& cluster() const noexcept { return cluster_; }

 private:
  struct Pending {
    std::uint64_t ticket = 0;
    KDag dag;
  };
  struct TicketRecord {
    JobState state = JobState::kQueued;
    std::uint32_t engine_index = 0;
    Time folded_epoch = -1;
    Time completion = -1;
    std::uint32_t attempts = 0;
    /// Wall time submit() accepted the job (drives the service.e2e_ns
    /// submit-to-complete latency histogram).
    std::chrono::steady_clock::time_point submitted_at;
  };
  /// One armed deadline; stale entries (attempt finished or superseded)
  /// are skipped lazily when they pop.
  struct DeadlineEntry {
    Time expiry = 0;
    std::uint64_t ticket = 0;
    std::uint32_t attempt = 0;
    /// Min-heap order, deterministic across equal expiries.
    [[nodiscard]] bool operator>(const DeadlineEntry& other) const noexcept {
      if (expiry != other.expiry) return expiry > other.expiry;
      return ticket > other.ticket;
    }
  };
  class StatsBlock;

  void worker_loop() FHS_EXCLUDES(mutex_);
  /// Folds the inbox into the engine at the current virtual time.
  /// Called by the worker with mutex_ held.
  void fold_inbox() FHS_REQUIRES(mutex_);
  /// Cancels every attempt whose deadline expired at or before the
  /// engine's current time, re-folding with backoff while attempts
  /// remain.  Called by the worker with mutex_ held, after harvesting
  /// completions (a job completing exactly at its expiry wins).
  void check_deadlines() FHS_REQUIRES(mutex_);
  /// Arms the deadline for `ticket`'s attempt entering at `arrival`.
  void arm_deadline(std::uint64_t ticket, std::uint32_t attempt, Time arrival)
      FHS_REQUIRES(mutex_);

  // Immutable after construction, read without the lock.
  Cluster cluster_;                            // fhs-lint: allow(guarded-field)
  ServiceConfig config_;                       // fhs-lint: allow(guarded-field)
  std::unique_ptr<MultiJobScheduler> scheduler_;  // fhs-lint: allow(guarded-field)

  mutable Mutex mutex_;
  std::condition_variable work_available_;  // worker waits: inbox/stop
  std::condition_variable space_available_;  // deferred submitters wait
  std::condition_variable progress_;         // drain()/pollers wait
  std::vector<Pending> inbox_ FHS_GUARDED_BY(mutex_);
  std::vector<TicketRecord> tickets_ FHS_GUARDED_BY(mutex_);
  AdmissionController admission_ FHS_GUARDED_BY(mutex_);
  std::uint64_t accepted_ FHS_GUARDED_BY(mutex_) = 0;
  std::uint64_t finished_ FHS_GUARDED_BY(mutex_) = 0;
  bool stop_ FHS_GUARDED_BY(mutex_) = false;

  // Engine state: owned by the worker thread after construction --
  // advance_until runs outside the lock, so it cannot be GUARDED_BY.
  // fold_inbox (worker, lock held) is the only other writer.
  MultiJobEngine engine_;                      // fhs-lint: allow(guarded-field)
  std::vector<std::uint64_t> engine_ticket_    // engine job index -> ticket id
      FHS_GUARDED_BY(mutex_);
  std::optional<JournalWriter> journal_ FHS_GUARDED_BY(mutex_);
  std::priority_queue<DeadlineEntry, std::vector<DeadlineEntry>,
                      std::greater<DeadlineEntry>>
      deadlines_ FHS_GUARDED_BY(mutex_);

  // Single-writer atomics, read lock-free by stats().
  std::unique_ptr<StatsBlock> stats_;          // fhs-lint: allow(guarded-field)
  /// Serializes join: the destructor may race an explicit shutdown().
  mutable Mutex join_mutex_;
  std::thread worker_ FHS_GUARDED_BY(join_mutex_);
};

/// Outcome of replaying a journal: the deterministic batch result plus
/// the reconstructed arrivals (for check_multijob_trace) and the
/// ticket of each engine job index.
struct ReplayResult {
  MultiJobResult result;
  std::vector<JobArrival> jobs;
  std::vector<std::uint64_t> tickets;

  /// Flow time of the ticket's LAST incarnation (a retried job folds
  /// more than once; the final fold is the one that ran to completion or
  /// cancellation).
  [[nodiscard]] Time flow_time_of(std::uint64_t ticket) const;
  /// True when the ticket's last incarnation was cancelled (i.e. the
  /// live session timed the job out for good).
  [[nodiscard]] bool cancelled_of(std::uint64_t ticket) const;
};

/// Re-runs a recorded session: folds each journaled job at its recorded
/// epoch (retry folds at their recorded arrival) and applies cancel
/// entries to the ticket's latest incarnation, then runs to completion.
/// Deterministic -- two replays of the same journal produce identical
/// results, and a replay reproduces the per-job flow times the live
/// service reported.  Pass the live session's fault plan through
/// `options.faults` when it had one.
[[nodiscard]] ReplayResult replay_journal(std::span<const JournalEntry> entries,
                                          const Cluster& cluster,
                                          const std::string& policy,
                                          const MultiEngineOptions& options = {});

}  // namespace fhs
