// Deterministic record/replay journal for the scheduling service.
//
// Every accepted submission is journaled, *at the moment it is folded
// into the engine*, as one newline-delimited JSON object:
//
//   {"ticket": 7, "epoch": 400, "kdag": "kdag v1 2 3 2\nt 0 4\n..."}
//
// `epoch` is the virtual time at which the job entered the engine (its
// effective arrival), and `kdag` is the job in the src/graph/serialize
// text format, JSON-escaped.  Because the engine is deterministic given
// (fold order, fold epochs, dags) -- exactly what the journal captures
// -- replay_journal() re-runs a recorded session bit-identically, no
// matter how the original submissions raced each other in wall time.
//
// Two extensions support the service's deadline/retry path (absent from
// journals of plain sessions, so the original format round-trips
// byte-identically):
//
//   {"ticket": 7, "epoch": 500, "cancel": true}
//   {"ticket": 7, "epoch": 500, "arrival": 520, "kdag": "..."}
//
// A cancel entry records that the job's current engine incarnation was
// cancelled at `epoch` (deadline expiry).  An entry with an `arrival`
// field is a retry fold: written at `epoch` (epochs stay monotone) but
// entering the engine at `arrival` >= epoch (the backoff delay).
//
// The sharded service (src/shard/) extends the format once more: each
// entry carries the shard that folded the job and that shard's own
// deterministic sequence number,
//
//   {"ticket": 7, "epoch": 400, "shard": 2, "seq": 5, "kdag": "..."}
//
// so a journal interleaved by several shard workers splits back into N
// independent per-shard streams that each replay bit-identically
// (src/shard/shard_journal.*).  Epochs are monotone *per shard* (each
// shard owns its own virtual clock); `seq` is the 0-based position in
// the shard's stream and must be contiguous.  Entries without a shard
// field belong to shard 0, and a single-shard session omits both fields
// entirely, so its journal stays byte-identical to the original format.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "graph/kdag.hh"

namespace fhs {

struct JournalEntry {
  std::uint64_t ticket = 0;
  Time epoch = 0;  ///< virtual time the entry was written (monotone per shard)
  /// Shard whose worker folded the job (0 for single-shard sessions).
  std::uint32_t shard = 0;
  /// 0-based position in the shard's own entry stream; -1 means "not a
  /// shard-aware entry" (legacy single-shard format, which omits the
  /// shard and seq fields entirely).
  std::int64_t seq = -1;
  /// Engine arrival when it differs from `epoch` (retry folds enter at
  /// epoch + backoff); -1 means "same as epoch".
  Time arrival = -1;
  /// True for a cancel record (no dag): the ticket's live incarnation
  /// was cancelled at `epoch`.
  bool cancel = false;
  KDag dag;

  JournalEntry() = default;
  /// A plain fold: the job enters the engine at `epoch`.
  JournalEntry(std::uint64_t ticket_id, Time at, KDag job)
      : ticket(ticket_id), epoch(at), dag(std::move(job)) {}

  /// A cancel record for the ticket's live incarnation.
  [[nodiscard]] static JournalEntry make_cancel(std::uint64_t ticket_id, Time at) {
    JournalEntry entry;
    entry.ticket = ticket_id;
    entry.epoch = at;
    entry.cancel = true;
    return entry;
  }
  /// A retry fold written at `at`, entering the engine at `enters`.
  [[nodiscard]] static JournalEntry make_retry(std::uint64_t ticket_id, Time at,
                                               Time enters, KDag job) {
    JournalEntry entry;
    entry.ticket = ticket_id;
    entry.epoch = at;
    entry.arrival = enters;
    entry.dag = std::move(job);
    return entry;
  }

  /// The time the job enters (or entered) the engine.
  [[nodiscard]] Time effective_arrival() const noexcept {
    return arrival >= 0 ? arrival : epoch;
  }

  /// True when the entry carries the shard-aware fields (a `seq` is
  /// written iff a `shard` is).
  [[nodiscard]] bool shard_aware() const noexcept { return seq >= 0; }
};

/// Appends entries to a caller-owned stream, one JSON line each,
/// flushing after every record so a crash loses at most the job being
/// written.  Single-writer: only the service worker thread appends.
class JournalWriter {
 public:
  explicit JournalWriter(std::ostream& out) : out_(&out) {}
  void append(const JournalEntry& entry);

 private:
  std::ostream* out_;
};

/// Serializes one entry as a JSON line (no trailing newline).
[[nodiscard]] std::string journal_line(const JournalEntry& entry);
/// Parses one JSON line; throws std::invalid_argument on malformed input.
[[nodiscard]] JournalEntry parse_journal_line(const std::string& line);

/// Reads a whole journal (blank lines skipped); throws on malformed
/// lines, epochs that decrease within a shard, or per-shard sequence
/// numbers that are not contiguous from 0.  Entries from different
/// shards may interleave freely (each shard owns its own clock).
[[nodiscard]] std::vector<JournalEntry> read_journal(std::istream& in);

}  // namespace fhs
