// Deterministic record/replay journal for the scheduling service.
//
// Every accepted submission is journaled, *at the moment it is folded
// into the engine*, as one newline-delimited JSON object:
//
//   {"ticket": 7, "epoch": 400, "kdag": "kdag v1 2 3 2\nt 0 4\n..."}
//
// `epoch` is the virtual time at which the job entered the engine (its
// effective arrival), and `kdag` is the job in the src/graph/serialize
// text format, JSON-escaped.  Because the engine is deterministic given
// (fold order, fold epochs, dags) -- exactly what the journal captures
// -- replay_journal() re-runs a recorded session bit-identically, no
// matter how the original submissions raced each other in wall time.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "graph/kdag.hh"

namespace fhs {

struct JournalEntry {
  std::uint64_t ticket = 0;
  Time epoch = 0;  ///< virtual time the job was folded into the engine
  KDag dag;
};

/// Appends entries to a caller-owned stream, one JSON line each,
/// flushing after every record so a crash loses at most the job being
/// written.  Single-writer: only the service worker thread appends.
class JournalWriter {
 public:
  explicit JournalWriter(std::ostream& out) : out_(&out) {}
  void append(const JournalEntry& entry);

 private:
  std::ostream* out_;
};

/// Serializes one entry as a JSON line (no trailing newline).
[[nodiscard]] std::string journal_line(const JournalEntry& entry);
/// Parses one JSON line; throws std::invalid_argument on malformed input.
[[nodiscard]] JournalEntry parse_journal_line(const std::string& line);

/// Reads a whole journal (blank lines skipped); throws on malformed
/// lines or non-monotone epochs.
[[nodiscard]] std::vector<JournalEntry> read_journal(std::istream& in);

}  // namespace fhs
