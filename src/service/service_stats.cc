#include "service/service_stats.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace fhs {

namespace {

/// The reject breakdown must account for every rejection: the service
/// tallies `rejected` and exactly one reason counter together, so any
/// divergence means a torn snapshot or a merge bug.  Checked for every
/// input and for the merged result (the satellite the breakdown was
/// missing: a merge that dropped a reason field used to go unnoticed).
void check_reject_breakdown(const ServiceStats& stats, const std::string& who) {
  const std::uint64_t sum = stats.rejected_queue_full + stats.rejected_overloaded +
                            stats.rejected_never_fits + stats.rejected_unschedulable +
                            stats.rejected_shutdown;
  if (sum != stats.rejected) {
    throw std::logic_error(
        "merge_service_stats: " + who + ": reject breakdown sums to " +
        std::to_string(sum) + " but rejected = " + std::to_string(stats.rejected));
  }
}

}  // namespace

ServiceStats merge_service_stats(std::span<const ServiceStats> parts) {
  ServiceStats out;
  out.shards = parts.size();
  // Denominator of the merged per-type utilization: sum over shards of
  // P_a * virtual_now (each shard contributes capacity-ticks on its own
  // clock, so a shard that idled early does not dilute the others).
  std::vector<double> capacity_ticks;
  double flow_sum = 0.0;  // sum over shards of mean_flow_time * completed
  for (std::size_t s = 0; s < parts.size(); ++s) {
    const ServiceStats& part = parts[s];
    check_reject_breakdown(part, "shard " + std::to_string(s));
    out.submitted += part.submitted;
    out.admitted += part.admitted;
    out.rejected += part.rejected;
    out.deferred += part.deferred;
    out.completed += part.completed;
    out.epochs += part.epochs;
    out.virtual_now = std::max(out.virtual_now, part.virtual_now);
    out.rejected_queue_full += part.rejected_queue_full;
    out.rejected_overloaded += part.rejected_overloaded;
    out.rejected_never_fits += part.rejected_never_fits;
    out.rejected_unschedulable += part.rejected_unschedulable;
    out.rejected_shutdown += part.rejected_shutdown;
    if (part.busy_ticks.size() > out.busy_ticks.size()) {
      out.busy_ticks.resize(part.busy_ticks.size(), 0);
      capacity_ticks.resize(part.busy_ticks.size(), 0.0);
    }
    for (std::size_t a = 0; a < part.busy_ticks.size(); ++a) {
      out.busy_ticks[a] += part.busy_ticks[a];
      const double procs =
          a < part.processors.size() ? static_cast<double>(part.processors[a]) : 0.0;
      capacity_ticks[a] += procs * static_cast<double>(part.virtual_now);
    }
    if (part.flow_time_bins.size() > out.flow_time_bins.size()) {
      out.flow_time_bins.resize(part.flow_time_bins.size(), 0);
    }
    for (std::size_t b = 0; b < part.flow_time_bins.size(); ++b) {
      out.flow_time_bins[b] += part.flow_time_bins[b];
    }
    flow_sum += part.mean_flow_time * static_cast<double>(part.completed);
    out.max_flow_time = std::max(out.max_flow_time, part.max_flow_time);
    out.deadline_enabled = out.deadline_enabled || part.deadline_enabled;
    out.timed_out += part.timed_out;
    out.retried += part.retried;
    out.retries_exhausted += part.retries_exhausted;
    out.faults_enabled = out.faults_enabled || part.faults_enabled;
    out.fault_failures += part.fault_failures;
    out.fault_recoveries += part.fault_recoveries;
    out.fault_slowdowns += part.fault_slowdowns;
    out.fault_tasks_killed += part.fault_tasks_killed;
    out.fault_work_discarded += part.fault_work_discarded;
    out.energy_enabled = out.energy_enabled || part.energy_enabled;
    if (part.energy_milli_per_type.size() > out.energy_milli_per_type.size()) {
      out.energy_milli_per_type.resize(part.energy_milli_per_type.size(), 0);
    }
    for (std::size_t a = 0; a < part.energy_milli_per_type.size(); ++a) {
      out.energy_milli_per_type[a] += part.energy_milli_per_type[a];
    }
    out.total_energy_milli += part.total_energy_milli;
    out.steals += part.steals;
    if (part.processors.size() > out.processors.size()) {
      out.processors.resize(part.processors.size(), 0);
    }
    for (std::size_t a = 0; a < part.processors.size(); ++a) {
      out.processors[a] += part.processors[a];
    }
  }
  out.utilization.assign(out.busy_ticks.size(), 0.0);
  for (std::size_t a = 0; a < out.busy_ticks.size(); ++a) {
    if (capacity_ticks[a] > 0.0) {
      out.utilization[a] = static_cast<double>(out.busy_ticks[a]) / capacity_ticks[a];
    }
  }
  if (out.completed > 0) {
    out.mean_flow_time = flow_sum / static_cast<double>(out.completed);
  }
  check_reject_breakdown(out, "merged result");
  return out;
}

}  // namespace fhs
