#include "service/journal.hh"

#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "exp/json.hh"
#include "graph/serialize.hh"

namespace fhs {

std::string journal_line(const JournalEntry& entry) {
  std::ostringstream line;
  line << "{\"ticket\": " << entry.ticket << ", \"epoch\": " << entry.epoch;
  if (entry.shard_aware()) {
    line << ", \"shard\": " << entry.shard << ", \"seq\": " << entry.seq;
  }
  if (entry.cancel) {
    line << ", \"cancel\": true}";
    return line.str();
  }
  if (entry.arrival >= 0 && entry.arrival != entry.epoch) {
    line << ", \"arrival\": " << entry.arrival;
  }
  line << ", \"kdag\": " << json_quote(kdag_to_string(entry.dag)) << '}';
  return line.str();
}

void JournalWriter::append(const JournalEntry& entry) {
  *out_ << journal_line(entry) << '\n';
  out_->flush();
}

namespace {

/// Tiny scanner for the journal's single-object JSON lines.  Accepts the
/// fields in any order; rejects anything else loudly.
class LineParser {
 public:
  explicit LineParser(const std::string& text) : text_(text) {}

  JournalEntry parse() {
    JournalEntry entry;
    bool saw_ticket = false;
    bool saw_epoch = false;
    bool saw_dag = false;
    bool saw_shard = false;
    bool saw_seq = false;
    expect('{');
    for (;;) {
      const std::string key = parse_string();
      expect(':');
      if (key == "ticket") {
        entry.ticket = parse_uint();
        saw_ticket = true;
      } else if (key == "epoch") {
        entry.epoch = static_cast<Time>(parse_uint());
        saw_epoch = true;
      } else if (key == "shard") {
        entry.shard = static_cast<std::uint32_t>(parse_uint());
        saw_shard = true;
      } else if (key == "seq") {
        entry.seq = static_cast<std::int64_t>(parse_uint());
        saw_seq = true;
      } else if (key == "arrival") {
        entry.arrival = static_cast<Time>(parse_uint());
      } else if (key == "cancel") {
        expect_literal("true");
        entry.cancel = true;
      } else if (key == "kdag") {
        entry.dag = kdag_from_string(parse_string());
        saw_dag = true;
      } else {
        fail("unknown field '" + key + "'");
      }
      skip_space();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    expect('}');
    skip_space();
    if (pos_ != text_.size()) fail("trailing content");
    if (!saw_ticket || !saw_epoch) fail("missing field");
    if (saw_shard != saw_seq) fail("shard and seq must appear together");
    if (entry.cancel && (saw_dag || entry.arrival >= 0)) {
      fail("cancel entry must not carry a dag or arrival");
    }
    if (!entry.cancel && !saw_dag) fail("missing field");
    if (entry.arrival >= 0 && entry.arrival < entry.epoch) {
      fail("arrival before epoch");
    }
    return entry;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("parse_journal_line: " + message + " at column " +
                                std::to_string(pos_ + 1));
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    skip_space();
    if (pos_ >= text_.size()) fail("unexpected end of line");
    return text_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch) fail(std::string("expected '") + ch + "'");
    ++pos_;
  }

  void expect_literal(const std::string& literal) {
    skip_space();
    if (text_.compare(pos_, literal.size(), literal) != 0) {
      fail("expected '" + literal + "'");
    }
    pos_ += literal.size();
  }

  std::uint64_t parse_uint() {
    skip_space();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    const std::string digits = text_.substr(start, pos_ - start);
    try {
      return std::stoull(digits);
    } catch (const std::out_of_range&) {
      // Route overflow through fail() so the caller gets the parser's
      // diagnostics (position context) instead of a bare stoull error.
      fail("number '" + digits + "' out of range");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char ch = text_[pos_++];
      if (ch != '\\') {
        value += ch;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char code = text_[pos_++];
      switch (code) {
        case '"': value += '"'; break;
        case '\\': value += '\\'; break;
        case '/': value += '/'; break;
        case 'n': value += '\n'; break;
        case 'r': value += '\r'; break;
        case 't': value += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          // All four chars must be hex digits: stoul would silently
          // accept a valid prefix (e.g. "\u12zz" decoding as 0x12).
          for (char digit : hex) {
            if (!std::isxdigit(static_cast<unsigned char>(digit))) {
              fail("invalid \\u escape '\\u" + hex + "'");
            }
          }
          pos_ += 4;
          const unsigned long cp = std::stoul(hex, nullptr, 16);
          if (cp > 0x7f) fail("non-ASCII \\u escape unsupported");
          value += static_cast<char>(cp);
          break;
        }
        default: fail(std::string("unknown escape '\\") + code + "'");
      }
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JournalEntry parse_journal_line(const std::string& line) {
  return LineParser(line).parse();
}

std::vector<JournalEntry> read_journal(std::istream& in) {
  std::vector<JournalEntry> entries;
  std::string line;
  // Per-shard cursors: each shard's stream must keep non-decreasing
  // epochs and contiguous 0-based sequence numbers; streams of distinct
  // shards interleave freely (legacy entries all land on shard 0).
  std::vector<Time> previous_epoch;
  std::vector<std::int64_t> next_seq;
  std::uint64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      entries.push_back(parse_journal_line(line));
    } catch (const std::invalid_argument& error) {
      throw std::invalid_argument("read_journal: line " +
                                  std::to_string(line_number) + ": " + error.what());
    }
    const JournalEntry& entry = entries.back();
    if (entry.shard >= previous_epoch.size()) {
      previous_epoch.resize(entry.shard + 1, 0);
      next_seq.resize(entry.shard + 1, 0);
    }
    if (entry.epoch < previous_epoch[entry.shard]) {
      throw std::invalid_argument("read_journal: line " +
                                  std::to_string(line_number) +
                                  ": epochs must be non-decreasing within a shard");
    }
    previous_epoch[entry.shard] = entry.epoch;
    if (entry.shard_aware()) {
      if (entry.seq != next_seq[entry.shard]) {
        throw std::invalid_argument(
            "read_journal: line " + std::to_string(line_number) + ": shard " +
            std::to_string(entry.shard) + " sequence must be contiguous (expected " +
            std::to_string(next_seq[entry.shard]) + ", got " +
            std::to_string(entry.seq) + ")");
      }
    }
    ++next_seq[entry.shard];
  }
  return entries;
}

}  // namespace fhs
