#include "service/service.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "rt/stream_rt.hh"

namespace fhs {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

MultiEngineOptions engine_options(const ServiceConfig& config) {
  MultiEngineOptions options;
  options.faults = config.faults;
  options.energy = config.energy;
  return options;
}

/// The utilization admission test checks L(J) against the service's
/// per-attempt deadline; callers normally leave AdmissionConfig::deadline
/// at 0 and let the service's own deadline flow in here.
AdmissionConfig admission_config(const ServiceConfig& config) {
  AdmissionConfig admission = config.admission;
  if (admission.utilization_admission && admission.deadline == 0) {
    admission.deadline = config.deadline;
  }
  return admission;
}

}  // namespace

/// Single-writer (the worker) block of atomics behind stats().  Readers
/// use relaxed loads: each field is individually consistent and
/// monotone; a snapshot may be torn across fields, which is fine for
/// observability.  The obs handles are looked up once here and shared by
/// every instrumentation site (registry lookups take a mutex; updates
/// are relaxed atomics).
class SchedulerService::StatsBlock {
 public:
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> deferred{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> epochs{0};
  std::atomic<std::uint64_t> reject_queue_full{0};
  std::atomic<std::uint64_t> reject_overloaded{0};
  std::atomic<std::uint64_t> reject_never_fits{0};
  std::atomic<std::uint64_t> reject_unschedulable{0};
  std::atomic<std::uint64_t> reject_shutdown{0};
  std::atomic<std::uint64_t> timed_out{0};
  std::atomic<std::uint64_t> retried{0};
  std::atomic<std::uint64_t> retries_exhausted{0};
  // Mirrors of the engine's FaultStats (worker-written after each slice).
  std::atomic<std::uint64_t> fault_failures{0};
  std::atomic<std::uint64_t> fault_recoveries{0};
  std::atomic<std::uint64_t> fault_slowdowns{0};
  std::atomic<std::uint64_t> fault_tasks_killed{0};
  std::atomic<std::uint64_t> fault_work_discarded{0};
  std::atomic<Time> virtual_now{0};
  std::atomic<std::int64_t> flow_sum{0};
  std::atomic<Time> max_flow{0};
  std::array<std::atomic<Time>, kMaxResourceTypes> busy{};
  std::array<std::atomic<std::uint64_t>, kMaxResourceTypes> energy_milli{};
  std::array<std::atomic<std::uint64_t>, kFlowTimeBins> bins{};

  obs::Counter& obs_submitted = obs::Registry::global().counter("service.submitted");
  obs::Counter& obs_admitted = obs::Registry::global().counter("service.admitted");
  obs::Counter& obs_deferred = obs::Registry::global().counter("service.deferred");
  obs::Counter& obs_completed = obs::Registry::global().counter("service.completed");
  obs::Counter& obs_reject_queue_full =
      obs::Registry::global().counter("service.reject.queue_full");
  obs::Counter& obs_reject_overloaded =
      obs::Registry::global().counter("service.reject.overloaded");
  obs::Counter& obs_reject_never_fits =
      obs::Registry::global().counter("service.reject.never_fits");
  obs::Counter& obs_reject_unschedulable =
      obs::Registry::global().counter("service.reject.unschedulable");
  obs::Counter& obs_reject_type_mismatch =
      obs::Registry::global().counter("service.reject.type_mismatch");
  obs::Counter& obs_reject_shutdown =
      obs::Registry::global().counter("service.reject.shutdown");
  obs::Histogram& obs_submit_ns =
      obs::Registry::global().histogram("service.submit_ns");
  obs::Histogram& obs_defer_wait_ns =
      obs::Registry::global().histogram("service.defer_wait_ns");
  obs::Histogram& obs_e2e_ns = obs::Registry::global().histogram("service.e2e_ns");
  obs::Histogram& obs_epoch_ns = obs::Registry::global().histogram("service.epoch_ns");
  obs::Histogram& obs_flow_ticks =
      obs::Registry::global().histogram("service.flow_ticks");
  obs::Counter& obs_timed_out = obs::Registry::global().counter("service.timed_out");
  obs::Counter& obs_retried = obs::Registry::global().counter("service.retried");
  obs::Counter& obs_retries_exhausted =
      obs::Registry::global().counter("service.retries_exhausted");
  obs::Histogram& obs_retry_backoff_ticks =
      obs::Registry::global().histogram("service.retry_backoff_ticks");
};

SchedulerService::SchedulerService(const Cluster& cluster, ServiceConfig config)
    : cluster_(cluster),
      config_(std::move(config)),
      scheduler_(make_stream_scheduler(config_.policy)),
      admission_(admission_config(config_), cluster_),
      engine_(cluster_, *scheduler_, engine_options(config_)),
      stats_(std::make_unique<StatsBlock>()) {
  if (config_.epoch_length <= 0) {
    throw std::invalid_argument("SchedulerService: epoch_length must be positive");
  }
  if (config_.deadline < 0 || config_.retry_backoff < 0) {
    throw std::invalid_argument(
        "SchedulerService: deadline and retry_backoff must be >= 0");
  }
  if (config_.max_attempts == 0) {
    throw std::invalid_argument("SchedulerService: max_attempts must be >= 1");
  }
  {
    MutexLock lock(mutex_);
    if (config_.journal != nullptr) journal_.emplace(*config_.journal);
  }
  MutexLock join_lock(join_mutex_);
  worker_ = std::thread([this] { worker_loop(); });
}

SchedulerService::~SchedulerService() { shutdown(); }

std::optional<JobTicket> SchedulerService::submit(KDag dag) {
  const bool observed = obs::enabled();
  const auto entered = std::chrono::steady_clock::now();
  // The StatsBlock is single atomics and the obs registry handles are
  // internally synchronized, so every tally happens OUTSIDE the critical
  // section; mutex_ covers only the admission decision and queue state
  // (thread-safety analysis surfaced the original lock scope, which held
  // mutex_ across all the bookkeeping below).
  stats_->submitted.fetch_add(1, std::memory_order_relaxed);
  if (observed) stats_->obs_submitted.add(1);

  enum class Outcome : std::uint8_t {
    kAdmitted,
    kShutdown,
    kQueueFull,
    kOverloaded,
    kNeverFits,
    kUnschedulable,
    kTypeMismatch,
  };
  Outcome outcome = Outcome::kAdmitted;
  std::uint64_t id = 0;
  bool deferred = false;
  std::uint64_t defer_wait_ns = 0;
  {
    MutexLock lock(mutex_);
    if (stop_) {
      outcome = Outcome::kShutdown;
    } else if (cluster_.num_types() < dag.num_types()) {
      outcome = Outcome::kTypeMismatch;
    } else {
      const AdmissionVerdict verdict = admission_.verdict(dag, inbox_.size());
      if (verdict == AdmissionVerdict::kUnschedulable) {
        // Provably cannot meet the deadline even alone on an idle
        // cluster -- a job-shaped rejection, never deferrable.
        outcome = Outcome::kUnschedulable;
      } else if (verdict != AdmissionVerdict::kAdmit) {
        // A job too large to ever fit is a rejection even under kDefer --
        // waiting for it would deadlock the submitter.
        if (!admission_.fits_when_idle(dag)) {
          outcome = Outcome::kNeverFits;
        } else if (config_.admission.overload == OverloadPolicy::kReject) {
          outcome = verdict == AdmissionVerdict::kQueueFull ? Outcome::kQueueFull
                                                            : Outcome::kOverloaded;
        } else {
          // Deferred is counted before the wait so stats() taken while a
          // submitter blocks already reflects it.
          deferred = true;
          stats_->deferred.fetch_add(1, std::memory_order_relaxed);
          if (observed) stats_->obs_deferred.add(1);
          const auto wait_started = std::chrono::steady_clock::now();
          while (!stop_ && !admission_.admissible(dag, inbox_.size())) {
            space_available_.wait(lock.native());
          }
          defer_wait_ns = elapsed_ns(wait_started);
          if (stop_) outcome = Outcome::kShutdown;
        }
      }
      if (outcome == Outcome::kAdmitted) {
        admission_.on_admit(dag);
        ++accepted_;
        id = tickets_.size() + 1;
        TicketRecord record;
        record.submitted_at = entered;
        tickets_.push_back(record);
        inbox_.push_back(Pending{id, std::move(dag)});
        work_available_.notify_one();
      }
    }
  }

  if (deferred && observed) stats_->obs_defer_wait_ns.record(defer_wait_ns);
  // Rejections are tallied by reason (the obs counters and the
  // per-reason ServiceStats fields always sum to `rejected`).
  auto reject = [&](std::atomic<std::uint64_t>& reason_stat,
                    obs::Counter& reason_counter) -> std::optional<JobTicket> {
    stats_->rejected.fetch_add(1, std::memory_order_relaxed);
    reason_stat.fetch_add(1, std::memory_order_relaxed);
    if (observed) reason_counter.add(1);
    return std::nullopt;
  };
  switch (outcome) {
    case Outcome::kShutdown:
      return reject(stats_->reject_shutdown, stats_->obs_reject_shutdown);
    case Outcome::kQueueFull:
      return reject(stats_->reject_queue_full, stats_->obs_reject_queue_full);
    case Outcome::kOverloaded:
      return reject(stats_->reject_overloaded, stats_->obs_reject_overloaded);
    case Outcome::kNeverFits:
      return reject(stats_->reject_never_fits, stats_->obs_reject_never_fits);
    case Outcome::kUnschedulable:
      return reject(stats_->reject_unschedulable, stats_->obs_reject_unschedulable);
    case Outcome::kTypeMismatch:
      if (observed) stats_->obs_reject_type_mismatch.add(1);
      throw std::invalid_argument("SchedulerService::submit: job K exceeds cluster K");
    case Outcome::kAdmitted:
      break;
  }
  stats_->admitted.fetch_add(1, std::memory_order_relaxed);
  if (observed) {
    stats_->obs_admitted.add(1);
    stats_->obs_submit_ns.record(elapsed_ns(entered));
  }
  return JobTicket{id};
}

JobStatus SchedulerService::poll(JobTicket ticket) const {
  MutexLock lock(mutex_);
  if (ticket.id == 0 || ticket.id > tickets_.size()) {
    throw std::out_of_range("SchedulerService::poll: unknown ticket");
  }
  const TicketRecord& record = tickets_[ticket.id - 1];
  JobStatus status;
  status.state = record.state;
  status.folded_epoch = record.folded_epoch;
  status.completion = record.completion;
  status.attempts = record.attempts;
  if (record.state == JobState::kCompleted) {
    status.flow_time = record.completion - record.folded_epoch;
  }
  return status;
}

void SchedulerService::drain() {
  MutexLock lock(mutex_);
  while (!(inbox_.empty() && finished_ == accepted_)) {
    progress_.wait(lock.native());
  }
}

void SchedulerService::shutdown() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
    work_available_.notify_all();
    space_available_.notify_all();
  }
  // join_mutex_ serializes the join: the destructor racing an explicit
  // shutdown() (or two threads shutting down) must not both touch
  // worker_ -- std::thread::join on a shared instance is a data race.
  MutexLock join_lock(join_mutex_);
  if (worker_.joinable()) worker_.join();
}

ServiceStats SchedulerService::stats() const {
  const StatsBlock& block = *stats_;
  ServiceStats out;
  out.submitted = block.submitted.load(std::memory_order_relaxed);
  out.admitted = block.admitted.load(std::memory_order_relaxed);
  out.rejected = block.rejected.load(std::memory_order_relaxed);
  out.deferred = block.deferred.load(std::memory_order_relaxed);
  out.completed = block.completed.load(std::memory_order_relaxed);
  out.epochs = block.epochs.load(std::memory_order_relaxed);
  out.rejected_queue_full = block.reject_queue_full.load(std::memory_order_relaxed);
  out.rejected_overloaded = block.reject_overloaded.load(std::memory_order_relaxed);
  out.rejected_never_fits = block.reject_never_fits.load(std::memory_order_relaxed);
  out.rejected_unschedulable =
      block.reject_unschedulable.load(std::memory_order_relaxed);
  out.rejected_shutdown = block.reject_shutdown.load(std::memory_order_relaxed);
  out.virtual_now = block.virtual_now.load(std::memory_order_relaxed);
  const ResourceType k = cluster_.num_types();
  out.busy_ticks.resize(k);
  out.utilization.assign(k, 0.0);
  out.processors.assign(cluster_.per_type().begin(), cluster_.per_type().end());
  for (ResourceType a = 0; a < k; ++a) {
    out.busy_ticks[a] = block.busy[a].load(std::memory_order_relaxed);
    if (out.virtual_now > 0) {
      out.utilization[a] =
          static_cast<double>(out.busy_ticks[a]) /
          (static_cast<double>(cluster_.processors(a)) *
           static_cast<double>(out.virtual_now));
    }
  }
  out.flow_time_bins.resize(kFlowTimeBins);
  for (std::size_t b = 0; b < kFlowTimeBins; ++b) {
    out.flow_time_bins[b] = block.bins[b].load(std::memory_order_relaxed);
  }
  out.max_flow_time = block.max_flow.load(std::memory_order_relaxed);
  if (out.completed > 0) {
    out.mean_flow_time =
        static_cast<double>(block.flow_sum.load(std::memory_order_relaxed)) /
        static_cast<double>(out.completed);
  }
  out.deadline_enabled = config_.deadline > 0;
  out.timed_out = block.timed_out.load(std::memory_order_relaxed);
  out.retried = block.retried.load(std::memory_order_relaxed);
  out.retries_exhausted = block.retries_exhausted.load(std::memory_order_relaxed);
  out.faults_enabled = config_.faults != nullptr && !config_.faults->empty();
  out.fault_failures = block.fault_failures.load(std::memory_order_relaxed);
  out.fault_recoveries = block.fault_recoveries.load(std::memory_order_relaxed);
  out.fault_slowdowns = block.fault_slowdowns.load(std::memory_order_relaxed);
  out.fault_tasks_killed = block.fault_tasks_killed.load(std::memory_order_relaxed);
  out.fault_work_discarded =
      block.fault_work_discarded.load(std::memory_order_relaxed);
  out.energy_enabled = config_.energy.has_value();
  if (out.energy_enabled) {
    out.energy_milli_per_type.resize(k);
    for (ResourceType a = 0; a < k; ++a) {
      out.energy_milli_per_type[a] =
          block.energy_milli[a].load(std::memory_order_relaxed);
      out.total_energy_milli += out.energy_milli_per_type[a];
    }
  }
  return out;
}

void SchedulerService::fold_inbox() {
  // FHS_REQUIRES(mutex_): folding mutates tickets_ and admission state.
  if (inbox_.empty()) return;
  const Time epoch = engine_.now();
  for (Pending& pending : inbox_) {
    if (journal_) {
      journal_->append(JournalEntry(pending.ticket, epoch, pending.dag));
    }
    const std::uint32_t index = engine_.add_job(std::move(pending.dag), epoch);
    if (engine_ticket_.size() != index) {
      throw std::logic_error("SchedulerService: engine index out of step");
    }
    engine_ticket_.push_back(pending.ticket);
    TicketRecord& record = tickets_[pending.ticket - 1];
    record.state = JobState::kScheduled;
    record.engine_index = index;
    record.folded_epoch = epoch;
    record.attempts = 1;
    arm_deadline(pending.ticket, 1, epoch);
  }
  inbox_.clear();
  space_available_.notify_all();
}

void SchedulerService::arm_deadline(std::uint64_t ticket, std::uint32_t attempt,
                                    Time arrival) {
  if (config_.deadline <= 0) return;
  deadlines_.push(DeadlineEntry{arrival + config_.deadline, ticket, attempt});
}

void SchedulerService::check_deadlines() {
  if (config_.deadline <= 0) return;
  const bool observed = obs::enabled();
  bool released = false;
  while (!deadlines_.empty() && deadlines_.top().expiry <= engine_.now()) {
    const DeadlineEntry entry = deadlines_.top();
    deadlines_.pop();
    TicketRecord& record = tickets_[entry.ticket - 1];
    // Stale: the attempt completed in time (harvest ran first, so a job
    // finishing exactly at its expiry wins) or was already superseded.
    if (record.state != JobState::kScheduled || record.attempts != entry.attempt) {
      continue;
    }
    const std::uint32_t index = record.engine_index;
    const Time now = engine_.now();
    (void)engine_.cancel_job(index);
    if (journal_) {
      journal_->append(JournalEntry::make_cancel(entry.ticket, now));
    }
    admission_.on_complete(engine_.job(index).dag);
    released = true;
    stats_->timed_out.fetch_add(1, std::memory_order_relaxed);
    if (observed) stats_->obs_timed_out.add(1);
    if (record.attempts < config_.max_attempts) {
      const Time backoff = backoff_for_attempt(config_.retry_backoff, record.attempts);
      const Time arrival = now + backoff;
      KDag dag = engine_.job(index).dag;
      if (journal_) {
        journal_->append(JournalEntry::make_retry(entry.ticket, now, arrival, dag));
      }
      const std::uint32_t new_index = engine_.add_job(std::move(dag), arrival);
      if (engine_ticket_.size() != new_index) {
        throw std::logic_error("SchedulerService: engine index out of step");
      }
      engine_ticket_.push_back(entry.ticket);
      admission_.on_admit(engine_.job(new_index).dag);
      record.engine_index = new_index;
      record.folded_epoch = arrival;
      ++record.attempts;
      arm_deadline(entry.ticket, record.attempts, arrival);
      stats_->retried.fetch_add(1, std::memory_order_relaxed);
      if (observed) {
        stats_->obs_retried.add(1);
        stats_->obs_retry_backoff_ticks.record(static_cast<std::uint64_t>(backoff));
      }
    } else {
      record.state = config_.max_attempts == 1 ? JobState::kTimedOut
                                               : JobState::kRetriesExhausted;
      record.completion = now;
      ++finished_;
      // With a single allowed attempt there were no retries to exhaust;
      // the timeout is already counted in timed_out.
      if (config_.max_attempts > 1) {
        stats_->retries_exhausted.fetch_add(1, std::memory_order_relaxed);
        if (observed) stats_->obs_retries_exhausted.add(1);
      }
      progress_.notify_all();
    }
  }
  if (released) space_available_.notify_all();
}

void SchedulerService::worker_loop() {
  MutexLock lock(mutex_);
  for (;;) {
    while (!(stop_ || !inbox_.empty() || !engine_.idle())) {
      work_available_.wait(lock.native());
    }
    if (stop_ && inbox_.empty() && engine_.idle()) break;
    const bool observed = obs::enabled();
    const auto epoch_started = std::chrono::steady_clock::now();
    obs::TraceSpan epoch_span("epoch", "service");
    fold_inbox();
    Time deadline = engine_.now() + config_.epoch_length;
    if (!deadlines_.empty()) {
      // Stop the slice at the next deadline expiry so attempts are
      // cancelled exactly when they time out, not at the next epoch edge.
      deadline = std::min(deadline, deadlines_.top().expiry);
    }
    lock.unlock();
    engine_.advance_until(deadline);
    const std::vector<std::uint32_t> done = engine_.take_completed();
    stats_->epochs.fetch_add(1, std::memory_order_relaxed);
    stats_->virtual_now.store(engine_.now(), std::memory_order_relaxed);
    const auto busy = engine_.busy_ticks();
    for (ResourceType a = 0; a < cluster_.num_types(); ++a) {
      stats_->busy[a].store(busy[a].raw(), std::memory_order_relaxed);
    }
    if (config_.energy.has_value()) {
      const auto energy = engine_.energy_milli();
      for (ResourceType a = 0; a < cluster_.num_types(); ++a) {
        stats_->energy_milli[a].store(energy[a].u64(), std::memory_order_relaxed);
      }
    }
    if (config_.faults != nullptr) {
      const FaultStats& faults = engine_.fault_stats();
      stats_->fault_failures.store(faults.failures, std::memory_order_relaxed);
      stats_->fault_recoveries.store(faults.recoveries, std::memory_order_relaxed);
      stats_->fault_slowdowns.store(faults.slowdowns, std::memory_order_relaxed);
      stats_->fault_tasks_killed.store(faults.tasks_killed,
                                       std::memory_order_relaxed);
      stats_->fault_work_discarded.store(
          static_cast<std::uint64_t>(faults.work_discarded),
          std::memory_order_relaxed);
    }
    lock.lock();
    for (const std::uint32_t index : done) {
      const std::uint64_t ticket = engine_ticket_[index];
      TicketRecord& record = tickets_[ticket - 1];
      record.state = JobState::kCompleted;
      record.completion = engine_.completion_time(index);
      admission_.on_complete(engine_.job(index).dag);
      ++finished_;
      const Time flow = record.completion - record.folded_epoch;
      stats_->completed.fetch_add(1, std::memory_order_relaxed);
      stats_->flow_sum.fetch_add(flow, std::memory_order_relaxed);
      stats_->bins[flow_time_bin(flow)].fetch_add(1, std::memory_order_relaxed);
      Time prior = stats_->max_flow.load(std::memory_order_relaxed);
      while (flow > prior &&
             !stats_->max_flow.compare_exchange_weak(prior, flow,
                                                     std::memory_order_relaxed)) {
      }
      if (observed) {
        stats_->obs_completed.add(1);
        stats_->obs_flow_ticks.record(static_cast<std::uint64_t>(flow));
        stats_->obs_e2e_ns.record(elapsed_ns(record.submitted_at));
      }
    }
    check_deadlines();
    if (observed) stats_->obs_epoch_ns.record(elapsed_ns(epoch_started));
    if (!done.empty()) {
      space_available_.notify_all();
      progress_.notify_all();
    }
    if (inbox_.empty() && finished_ == accepted_) progress_.notify_all();
  }
}

// --- replay ----------------------------------------------------------------------

namespace {

/// Index of the ticket's LAST fold (retries fold the same ticket again).
std::size_t last_fold_index(const std::vector<std::uint64_t>& tickets,
                            std::uint64_t ticket, const char* who) {
  const auto it = std::find(tickets.rbegin(), tickets.rend(), ticket);
  if (it == tickets.rend()) {
    throw std::out_of_range(std::string(who) + ": unknown ticket");
  }
  return tickets.size() - 1 - static_cast<std::size_t>(it - tickets.rbegin());
}

}  // namespace

Time ReplayResult::flow_time_of(std::uint64_t ticket) const {
  return result.flow_time[last_fold_index(tickets, ticket,
                                          "ReplayResult::flow_time_of")];
}

bool ReplayResult::cancelled_of(std::uint64_t ticket) const {
  const std::size_t index =
      last_fold_index(tickets, ticket, "ReplayResult::cancelled_of");
  return !result.cancelled.empty() && result.cancelled[index] != 0;
}

ReplayResult replay_journal(std::span<const JournalEntry> entries,
                            const Cluster& cluster, const std::string& policy,
                            const MultiEngineOptions& options) {
  const auto scheduler = make_stream_scheduler(policy);
  MultiJobEngine engine(cluster, *scheduler, options);
  ReplayResult out;
  out.tickets.reserve(entries.size());
  out.jobs.reserve(entries.size());
  for (const JournalEntry& entry : entries) {
    // advance_until mirrors the live worker: the slice ending at this
    // epoch is simulated before the fold, so dispatch decisions made
    // without the new job are reproduced exactly.  Only advance when the
    // epoch moves forward -- advancing between same-epoch entries would
    // dispatch with a prefix of the fold batch admitted, which the live
    // service (folding the whole batch before its next slice) never does.
    if (entry.epoch > engine.now()) engine.advance_until(entry.epoch);
    if (entry.cancel) {
      // Mirror the live deadline path: cancel the ticket's latest
      // incarnation at the recorded instant.
      const auto index = static_cast<std::uint32_t>(last_fold_index(
          out.tickets, entry.ticket, "replay_journal: cancel entry"));
      (void)engine.cancel_job(index);
      continue;
    }
    const Time arrival = entry.effective_arrival();
    (void)engine.add_job(entry.dag, arrival);
    out.tickets.push_back(entry.ticket);
    out.jobs.push_back(JobArrival{entry.dag, arrival});
  }
  engine.run_to_completion();
  out.result = engine.finish();
  return out;
}

}  // namespace fhs
