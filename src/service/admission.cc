#include "service/admission.hh"

#include <stdexcept>

namespace fhs {

AdmissionController::AdmissionController(const AdmissionConfig& config,
                                         const Cluster& cluster)
    : config_(config) {
  if (config.max_queue_depth == 0) {
    throw std::invalid_argument("AdmissionController: zero queue depth admits nothing");
  }
  if (config.max_outstanding_per_proc <= 0.0) {
    throw std::invalid_argument(
        "AdmissionController: non-positive outstanding-work bound");
  }
  processors_.assign(cluster.per_type().begin(), cluster.per_type().end());
  outstanding_.assign(processors_.size(), 0);
}

bool AdmissionController::admissible(const KDag& dag,
                                     std::size_t queue_depth) const noexcept {
  if (queue_depth >= config_.max_queue_depth) return false;
  for (ResourceType a = 0; a < dag.num_types() && a < processors_.size(); ++a) {
    const double would_be =
        static_cast<double>(outstanding_[a] + dag.total_work(a)) /
        static_cast<double>(processors_[a]);
    if (would_be > config_.max_outstanding_per_proc) return false;
  }
  return true;
}

bool AdmissionController::fits_when_idle(const KDag& dag) const noexcept {
  for (ResourceType a = 0; a < dag.num_types() && a < processors_.size(); ++a) {
    const double alone = static_cast<double>(dag.total_work(a)) /
                         static_cast<double>(processors_[a]);
    if (alone > config_.max_outstanding_per_proc) return false;
  }
  return true;
}

void AdmissionController::on_admit(const KDag& dag) {
  for (ResourceType a = 0; a < dag.num_types() && a < processors_.size(); ++a) {
    outstanding_[a] += dag.total_work(a);
  }
}

void AdmissionController::on_complete(const KDag& dag) {
  for (ResourceType a = 0; a < dag.num_types() && a < processors_.size(); ++a) {
    outstanding_[a] -= dag.total_work(a);
  }
}

double AdmissionController::outstanding_per_proc(ResourceType alpha) const {
  return static_cast<double>(outstanding_.at(alpha)) /
         static_cast<double>(processors_.at(alpha));
}

}  // namespace fhs
