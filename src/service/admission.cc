#include "service/admission.hh"

#include <stdexcept>

#include "rt/schedulability.hh"

namespace fhs {

AdmissionController::AdmissionController(const AdmissionConfig& config,
                                         const Cluster& cluster)
    : config_(config), cluster_(cluster) {
  if (config.max_queue_depth == 0) {
    throw std::invalid_argument("AdmissionController: zero queue depth admits nothing");
  }
  if (config.max_outstanding_per_proc <= 0.0) {
    throw std::invalid_argument(
        "AdmissionController: non-positive outstanding-work bound");
  }
  processors_.assign(cluster.per_type().begin(), cluster.per_type().end());
  outstanding_.assign(processors_.size(), 0);
}

const char* to_string(AdmissionVerdict verdict) noexcept {
  switch (verdict) {
    case AdmissionVerdict::kAdmit: return "admit";
    case AdmissionVerdict::kTypeMismatch: return "type_mismatch";
    case AdmissionVerdict::kUnschedulable: return "unschedulable";
    case AdmissionVerdict::kQueueFull: return "queue_full";
    case AdmissionVerdict::kOverloaded: return "overloaded";
  }
  return "unknown";
}

AdmissionVerdict AdmissionController::verdict(const KDag& dag,
                                              std::size_t queue_depth) const noexcept {
  // The old `a < num_types && a < processors_.size()` loops truncated
  // the check to the cluster's types, silently admitting jobs with work
  // of a type the cluster cannot execute at all.
  if (dag.num_types() > processors_.size()) return AdmissionVerdict::kTypeMismatch;
  // Infeasibility is a property of the job, not of the current load:
  // checked before the load limits so the reject reason is stable.
  if (config_.utilization_admission && config_.deadline > 0 &&
      !rt_schedulable(dag, cluster_, config_.deadline)) {
    return AdmissionVerdict::kUnschedulable;
  }
  if (queue_depth >= config_.max_queue_depth) return AdmissionVerdict::kQueueFull;
  for (ResourceType a = 0; a < dag.num_types(); ++a) {
    const double would_be =
        static_cast<double>(outstanding_[a] + dag.total_work(a)) /
        static_cast<double>(processors_[a]);
    if (would_be > config_.max_outstanding_per_proc) {
      return AdmissionVerdict::kOverloaded;
    }
  }
  return AdmissionVerdict::kAdmit;
}

bool AdmissionController::fits_when_idle(const KDag& dag) const noexcept {
  if (dag.num_types() > processors_.size()) return false;
  // An unschedulable job never becomes schedulable by waiting; deferring
  // it would block the submitter forever.
  if (config_.utilization_admission && config_.deadline > 0 &&
      !rt_schedulable(dag, cluster_, config_.deadline)) {
    return false;
  }
  for (ResourceType a = 0; a < dag.num_types(); ++a) {
    const double alone = static_cast<double>(dag.total_work(a)) /
                         static_cast<double>(processors_[a]);
    if (alone > config_.max_outstanding_per_proc) return false;
  }
  return true;
}

void AdmissionController::on_admit(const KDag& dag) {
  if (dag.num_types() > processors_.size()) {
    throw std::invalid_argument(
        "AdmissionController::on_admit: job uses more resource types than the "
        "cluster provides (such a job must be rejected, not admitted)");
  }
  for (ResourceType a = 0; a < dag.num_types(); ++a) {
    outstanding_[a] += dag.total_work(a);
  }
}

void AdmissionController::on_complete(const KDag& dag) {
  if (dag.num_types() > processors_.size()) {
    throw std::invalid_argument(
        "AdmissionController::on_complete: job uses more resource types than "
        "the cluster provides");
  }
  for (ResourceType a = 0; a < dag.num_types(); ++a) {
    outstanding_[a] -= dag.total_work(a);
  }
}

double AdmissionController::outstanding_per_proc(ResourceType alpha) const {
  return static_cast<double>(outstanding_.at(alpha)) /
         static_cast<double>(processors_.at(alpha));
}

}  // namespace fhs
