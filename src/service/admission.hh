// Admission control: keeps an overloaded service degrading gracefully
// instead of queueing without bound.
//
// Two limits, both in the spirit of the paper's x-utilization metric
// r_alpha = l_alpha / P_alpha (§IV-A):
//
//  * queue depth -- submissions accepted but not yet folded into the
//    engine are capped, bounding the service's buffer memory;
//  * outstanding typed work -- the admitted-but-unfinished alpha-work
//    per alpha-processor is capped, so one flood of (say) GPU-heavy
//    jobs cannot build an unbounded backlog on one pool while the
//    others idle.
//
// What happens beyond a limit is the overload policy: kReject refuses
// the submission immediately; kDefer blocks the submitter until load
// drains (backpressure).  The controller itself is synchronization-free
// bookkeeping -- SchedulerService serializes calls under its own lock,
// a guarantee the service states to the thread safety analysis by
// declaring its controller member FHS_GUARDED_BY(mutex_); adding a
// mutex here would duplicate that lock, not add safety.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/kdag.hh"
#include "machine/cluster.hh"

namespace fhs {

enum class OverloadPolicy {
  kReject,  ///< submit() fails fast when a limit is hit
  kDefer,   ///< submit() blocks until the load drains
};

struct AdmissionConfig {
  /// Max submissions accepted but not yet folded into the engine.
  std::size_t max_queue_depth = 64;
  /// Max admitted-but-unfinished work per processor, per type:
  /// l_alpha / P_alpha may not exceed this many ticks.
  double max_outstanding_per_proc = 1 << 14;
  OverloadPolicy overload = OverloadPolicy::kReject;
  /// Utilization schedulability test (rt/schedulability.hh): reject a
  /// job whose completion-time lower bound L(J) = max(span, max_alpha
  /// ceil(W_alpha / P_alpha)) already exceeds `deadline` -- it provably
  /// cannot finish in time even alone on an idle cluster, so admitting
  /// it only burns capacity on an attempt the deadline reaper will
  /// cancel.  Ignored unless `deadline` > 0 (SchedulerService fills the
  /// deadline in from its own config when left at 0 here).
  bool utilization_admission = false;
  Time deadline = 0;
};

/// Why a submission was (or was not) admitted; kAdmit means all limits
/// hold.  The service surfaces these as per-reason reject counters.
enum class AdmissionVerdict {
  kAdmit,
  kTypeMismatch,   ///< the job uses resource types the cluster doesn't have
  kUnschedulable,  ///< L(J) exceeds the deadline: infeasible even when idle
  kQueueFull,      ///< max_queue_depth reached
  kOverloaded,     ///< outstanding l_alpha / P_alpha limit exceeded
};

[[nodiscard]] const char* to_string(AdmissionVerdict verdict) noexcept;

class AdmissionController {
 public:
  AdmissionController(const AdmissionConfig& config, const Cluster& cluster);

  /// Full decision with the limiting reason (first limit hit wins, in
  /// enum order).  A job whose num_types() exceeds the cluster's type
  /// count is kTypeMismatch: it can never be scheduled, so admitting it
  /// -- as the old per-type loops silently did by dropping the excess
  /// types -- would strand it in the engine forever.
  [[nodiscard]] AdmissionVerdict verdict(const KDag& dag,
                                         std::size_t queue_depth) const noexcept;

  /// Would admitting `dag` now keep every limit satisfied?
  [[nodiscard]] bool admissible(const KDag& dag, std::size_t queue_depth) const noexcept {
    return verdict(dag, queue_depth) == AdmissionVerdict::kAdmit;
  }

  /// Could `dag` ever be admitted, even with zero outstanding load?  A
  /// job failing this (including a type mismatch) can never fit;
  /// deferring it would deadlock.
  [[nodiscard]] bool fits_when_idle(const KDag& dag) const noexcept;

  /// Accounts an admitted job's work as outstanding.  Throws
  /// std::invalid_argument if the job's types don't fit the cluster
  /// (such a job must have been rejected, never admitted).
  void on_admit(const KDag& dag);
  /// Releases a finished job's work (same type check as on_admit, so
  /// admit/complete accounting stays symmetric).
  void on_complete(const KDag& dag);

  /// Current l_alpha / P_alpha.
  [[nodiscard]] double outstanding_per_proc(ResourceType alpha) const;
  [[nodiscard]] const AdmissionConfig& config() const noexcept { return config_; }

 private:
  AdmissionConfig config_;
  Cluster cluster_;  ///< kept whole for the rt_schedulable bound
  std::vector<std::uint32_t> processors_;  // P_alpha
  std::vector<Work> outstanding_;          // l_alpha
};

}  // namespace fhs
