// Live observability snapshot of the scheduling service.
//
// The worker thread updates an internal block of atomics as it runs;
// SchedulerService::stats() assembles this plain struct from them with
// relaxed loads, so readers never take a lock (counters are monotone,
// and a snapshot may be torn *across* fields but never within one).
// The struct itself carries no synchronization -- it is a value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/kdag.hh"

namespace fhs {

/// Number of log2-width flow-time histogram bins: bin b >= 1 counts jobs
/// with flow time in [2^b, 2^(b+1)); bin 0 is flow <= 1 and the last bin
/// is open-ended.
inline constexpr std::size_t kFlowTimeBins = 20;

/// Bin index for one flow-time sample.
[[nodiscard]] inline std::size_t flow_time_bin(Time flow) noexcept {
  std::size_t bin = 0;
  while (flow > 1 && bin + 1 < kFlowTimeBins) {
    flow >>= 1;
    ++bin;
  }
  return bin;
}

struct ServiceStats {
  std::uint64_t submitted = 0;  ///< submit() calls, including rejected
  std::uint64_t admitted = 0;   ///< accepted by admission control
  std::uint64_t rejected = 0;   ///< refused (or abandoned at shutdown)
  std::uint64_t deferred = 0;   ///< submissions that had to wait for space
  std::uint64_t completed = 0;  ///< jobs fully executed
  std::uint64_t epochs = 0;     ///< worker slices executed
  Time virtual_now = 0;         ///< engine virtual clock

  /// Reject breakdown (sums to `rejected`): why admission refused.
  std::uint64_t rejected_queue_full = 0;   ///< inbox at max_queue_depth
  std::uint64_t rejected_overloaded = 0;   ///< outstanding-work limit (kReject)
  std::uint64_t rejected_never_fits = 0;   ///< too big to ever fit (kDefer)
  std::uint64_t rejected_unschedulable = 0;  ///< L(J) exceeds the deadline
  std::uint64_t rejected_shutdown = 0;     ///< submitted during/after shutdown

  /// Per resource type, indexed [0, num_types).
  std::vector<Time> busy_ticks;
  /// busy_ticks[a] / (P_a * virtual_now); 0 before time advances.
  std::vector<double> utilization;
  /// P_a of the cluster (or partition slice) these stats cover.  Not
  /// serialized; merge_service_stats needs it to weight utilization
  /// across shards whose virtual clocks advanced unequally.
  std::vector<std::uint32_t> processors;

  /// Histogram of per-job flow times (see flow_time_bin).
  std::vector<std::uint64_t> flow_time_bins;
  double mean_flow_time = 0.0;
  Time max_flow_time = 0;

  /// Deadline/retry tallies (only meaningful -- and only serialized --
  /// when the config sets a deadline).
  bool deadline_enabled = false;
  std::uint64_t timed_out = 0;  ///< attempts cancelled at deadline expiry
  std::uint64_t retried = 0;    ///< re-folds after a timeout
  std::uint64_t retries_exhausted = 0;  ///< jobs that ran out of attempts

  /// Fault-plan tallies mirrored from the engine (only meaningful -- and
  /// only serialized -- when the config carries a non-empty plan).
  bool faults_enabled = false;
  std::uint64_t fault_failures = 0;
  std::uint64_t fault_recoveries = 0;
  std::uint64_t fault_slowdowns = 0;
  std::uint64_t fault_tasks_killed = 0;
  std::uint64_t fault_work_discarded = 0;

  /// Energy tallies mirrored from the engine's EnergyModel integration
  /// (only meaningful -- and only serialized -- when the config carries
  /// an energy model).  Milliwatt-ticks per resource type and their sum.
  bool energy_enabled = false;
  std::vector<std::uint64_t> energy_milli_per_type;
  std::uint64_t total_energy_milli = 0;

  /// Sharding tallies (src/shard/): number of shards these stats merge
  /// over (0 = a plain single service, keeping its JSON bytes unchanged)
  /// and jobs moved between shards by work stealing.  Serialized only
  /// when shards > 0.
  std::uint64_t shards = 0;
  std::uint64_t steals = 0;
};

/// Merge-on-read aggregation across shard snapshots: counters sum,
/// virtual_now takes the max (each shard owns a clock), per-type busy
/// ticks sum, utilization re-weights by each shard's P_a * virtual_now,
/// flow-time histograms add bin-wise, and mean flow re-weights by
/// completions.  Every input's rejected_{queue_full,overloaded,
/// never_fits,shutdown} breakdown -- and the merged output's -- is
/// asserted to sum to its `rejected` total; a violation (a torn or
/// miscounted shard snapshot) throws std::logic_error instead of
/// silently publishing inconsistent stats.
[[nodiscard]] ServiceStats merge_service_stats(std::span<const ServiceStats> parts);

}  // namespace fhs
