// Utilization-based schedulability test for deadline admission (ROADMAP
// "deadline- and energy-aware online scheduler family"; the shape of
// yass bf.c's yass_dpm_schedulability_test, lifted to K-DAGs).
//
// Any schedule of job J on this cluster needs at least
//
//   L(J) = max( T_inf(J),  max_alpha ceil(T1(J, alpha) / P_alpha) )
//
// ticks (the paper's §V-A lower bound): the critical path is
// irreducible, and the busiest resource type must chew through its
// total work.  A job whose relative deadline is below L(J) therefore
// *provably* cannot meet it -- no scheduler, no idle cluster, no luck
// can help -- so the service admission layer rejects it up front
// (AdmissionVerdict::kUnschedulable) instead of running it, burning
// processor-ticks, and cancelling it at expiry.
//
// The test is necessary, not sufficient: it uses the cluster's static
// processor counts (fault outages and queue contention only make things
// worse), so passing it never guarantees the deadline.  That is the
// right polarity for admission -- false "schedulable" degrades to the
// existing timeout path; false "unschedulable" would wrongly reject.
#pragma once

#include "graph/kdag.hh"
#include "machine/cluster.hh"

namespace fhs {

/// L(J): the completion-time lower bound used as the admission yardstick
/// (equals metrics/bounds completion_time_lower_bound).
[[nodiscard]] Time rt_lower_bound(const KDag& dag, const Cluster& cluster);

/// True when `deadline` (relative, > 0) is not provably unreachable:
/// deadline >= L(J).  A non-positive deadline means "no deadline" and is
/// always schedulable.  Jobs whose types exceed the cluster's are not
/// schedulable on it at all (callers normally reject those earlier as
/// kTypeMismatch).
[[nodiscard]] bool rt_schedulable(const KDag& dag, const Cluster& cluster,
                                  Time deadline);

}  // namespace fhs
