// Deadline-aware stream policies: EDF, LLF, and gang co-scheduling over
// the multi-job engine (ROADMAP "deadline- and energy-aware online
// scheduler family"; the FHS lift of yass edf.c / llf.c / gang-edf.c).
//
// Per job j arriving at r_j, the absolute job deadline is its earliest
// possible completion d_j = r_j + T_inf(J_j), and each task inherits the
// absolute latest-start deadline r_j + due(v) from the due dates of
// src/graph/analysis (due(v) = T_inf - remaining_span(v)).  The family:
//
//  * EDF       -- earliest absolute task deadline r_j + due(v) first.
//  * LLF       -- least slack first.  In a DAG setting the span-based
//    remaining-time estimate is already folded into due(v) (pure-span
//    LLF collapses into EDF), so the dynamic slack term uses the *other*
//    side of the paper's lower bound L(J): the work-volume pressure
//    ceil(W_rem(j) / P_total).  laxity(v, t) = r_j + due(v) - t -
//    W_rem(j)/P_total; volume drains as the job executes, so urgency is
//    dynamic where EDF's is static.
//  * Gang-EDF  -- jobs in EDF order by d_j; a job whose entire ready
//    frontier fits the currently free processors of every type is
//    co-scheduled as one gang (all its ready tasks start together,
//    across types).  Leftover processors are then filled in plain EDF
//    task order, so gang grouping only reorders work -- it never
//    withholds a processor, keeping the engine's work-conservation
//    invariant intact.
//
// All three read task works / remaining job work, i.e. offline
// information in the §II sense -- same class as SRJF and global MQB.
#pragma once

#include <memory>
#include <string>

#include "multijob/multijob.hh"

namespace fhs {

[[nodiscard]] std::unique_ptr<MultiJobScheduler> make_stream_edf();
[[nodiscard]] std::unique_ptr<MultiJobScheduler> make_stream_llf();
[[nodiscard]] std::unique_ptr<MultiJobScheduler> make_gang_edf();

/// Extended stream-policy factory: "edf" | "llf" | "gang" plus every
/// make_multijob_scheduler() name ("kgreedy" | "fcfs" | "srjf" | "mqb").
/// The service layer resolves --policy through this.
[[nodiscard]] std::unique_ptr<MultiJobScheduler> make_stream_scheduler(
    const std::string& spec);

}  // namespace fhs
