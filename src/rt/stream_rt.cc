#include "rt/stream_rt.hh"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/analysis.hh"
#include "graph/kdag_algorithms.hh"

namespace fhs {

namespace {

/// Static per-job deadline data, built once at admit().
struct RtJobState {
  VirtualTime arrival{};
  VirtualTime deadline{};          ///< absolute: arrival + T_inf(J)
  std::vector<VirtualDur> due;     ///< due(v) = T_inf - remaining_span(v)
};

/// Shared state management for the deadline family: builds RtJobState in
/// admit() and provides the per-type max-score dispatch loop (a copy of
/// the multijob priority loop, which is file-local there); ties break
/// oldest-ready first.
class RtStreamScheduler : public MultiJobScheduler {
 public:
  void prepare(const Cluster&) override { states_.clear(); }

  void admit(std::uint32_t job, const JobArrival& arrival) override {
    if (job != states_.size()) {
      throw std::logic_error("RtStreamScheduler::admit: non-dense job index");
    }
    RtJobState state;
    state.arrival = VirtualTime{arrival.arrival};
    const std::vector<Time> raw_due = due_dates(arrival.dag);
    state.due.reserve(raw_due.size());
    for (const Time d : raw_due) state.due.push_back(VirtualDur{d});
    state.deadline = state.arrival + VirtualDur{static_cast<Time>(span(arrival.dag))};
    states_.push_back(std::move(state));
  }

  void dispatch(MultiDispatchContext& ctx) final {
    gang_pass(ctx);
    for (ResourceType alpha = 0; alpha < ctx.num_types(); ++alpha) {
      while (ctx.free_processors(alpha) > 0) {
        const auto queue = ctx.ready(alpha);
        if (queue.empty()) break;
        std::size_t best = 0;
        double best_score = score(queue[0], ctx);
        for (std::size_t i = 1; i < queue.size(); ++i) {
          const double s = score(queue[i], ctx);
          if (s > best_score) {
            best_score = s;
            best = i;
          }
        }
        ctx.assign(alpha, best);
      }
    }
  }

 protected:
  [[nodiscard]] virtual double score(GlobalTask id,
                                     const MultiDispatchContext& ctx) const = 0;
  /// Hook for Gang-EDF; the plain policies do nothing here.
  virtual void gang_pass(MultiDispatchContext& ctx) { (void)ctx; }

  /// Absolute latest-start deadline of a ready task.
  [[nodiscard]] VirtualTime task_deadline(GlobalTask id) const {
    const RtJobState& state = states_[id.job];
    return state.arrival + state.due[id.task];
  }
  [[nodiscard]] const RtJobState& state(std::uint32_t job) const {
    return states_[job];
  }

 private:
  std::vector<RtJobState> states_;
};

class StreamEdf final : public RtStreamScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "EDF"; }

 protected:
  [[nodiscard]] double score(GlobalTask id,
                             const MultiDispatchContext&) const override {
    return -static_cast<double>(task_deadline(id).raw());  // earliest deadline first
  }
};

class StreamLlf final : public RtStreamScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "LLF"; }

 protected:
  [[nodiscard]] double score(GlobalTask id,
                             const MultiDispatchContext& ctx) const override {
    // laxity = absolute deadline - now - volume pressure; `now` is common
    // to every candidate of one decision point, so it drops out of the
    // ranking but is kept for the laxity reading to be meaningful.
    Work procs = 0;
    for (ResourceType a = 0; a < ctx.num_types(); ++a) {
      procs += ctx.total_processors(a);
    }
    const Work pressure = ctx.remaining_job_work(id.job) / std::max<Work>(procs, 1);
    const VirtualDur laxity = (task_deadline(id) - VirtualTime{ctx.now()}) -
                              VirtualDur{static_cast<Time>(pressure)};
    return -static_cast<double>(laxity.raw());  // least laxity first
  }
};

class GangEdf final : public RtStreamScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "Gang-EDF"; }

 protected:
  [[nodiscard]] double score(GlobalTask id,
                             const MultiDispatchContext&) const override {
    return -static_cast<double>(task_deadline(id).raw());  // EDF fill pass
  }

  void gang_pass(MultiDispatchContext& ctx) override {
    // Census of the ready frontier: distinct jobs and their per-type
    // ready-task counts, gathered in queue order (deterministic).
    const ResourceType k = ctx.num_types();
    jobs_.clear();
    counts_.clear();
    for (ResourceType alpha = 0; alpha < k; ++alpha) {
      for (const GlobalTask id : ctx.ready(alpha)) {
        std::size_t slot = 0;
        while (slot < jobs_.size() && jobs_[slot] != id.job) ++slot;
        if (slot == jobs_.size()) {
          jobs_.push_back(id.job);
          counts_.resize(counts_.size() + k, 0);
        }
        ++counts_[slot * k + alpha];
      }
    }
    // EDF job order: earliest absolute job deadline first, older job on
    // ties (stable, and job indices are arrival-ordered).
    order_.resize(jobs_.size());
    for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
    std::stable_sort(order_.begin(), order_.end(),
                     [&](std::size_t a, std::size_t b) {
                       const VirtualTime da = state(jobs_[a]).deadline;
                       const VirtualTime db = state(jobs_[b]).deadline;
                       if (da != db) return da < db;
                       return jobs_[a] < jobs_[b];
                     });
    // Co-schedule each job whose whole frontier fits what is free right
    // now; later jobs see the shrunken free counts.  Jobs that do not
    // fit are skipped -- the EDF fill pass (base dispatch) places their
    // tasks piecemeal, so no processor is ever withheld.
    for (const std::size_t slot : order_) {
      bool fits = true;
      for (ResourceType a = 0; a < k && fits; ++a) {
        fits = counts_[slot * k + a] <= ctx.free_processors(a);
      }
      if (!fits) continue;
      const std::uint32_t job = jobs_[slot];
      for (ResourceType a = 0; a < k; ++a) {
        for (std::uint32_t placed = 0; placed < counts_[slot * k + a]; ++placed) {
          // Re-fetch after every assign: spans invalidate.
          const auto queue = ctx.ready(a);
          std::size_t i = 0;
          while (i < queue.size() && queue[i].job != job) ++i;
          if (i == queue.size()) {
            throw std::logic_error("GangEdf: censused ready task vanished");
          }
          ctx.assign(a, i);
        }
      }
    }
  }

 private:
  // Scratch reused across dispatches.
  std::vector<std::uint32_t> jobs_;
  std::vector<std::uint32_t> counts_;  ///< [slot * num_types + alpha]
  std::vector<std::size_t> order_;
};

}  // namespace

std::unique_ptr<MultiJobScheduler> make_stream_edf() {
  return std::make_unique<StreamEdf>();
}
std::unique_ptr<MultiJobScheduler> make_stream_llf() {
  return std::make_unique<StreamLlf>();
}
std::unique_ptr<MultiJobScheduler> make_gang_edf() {
  return std::make_unique<GangEdf>();
}

std::unique_ptr<MultiJobScheduler> make_stream_scheduler(const std::string& spec) {
  if (spec == "edf") return make_stream_edf();
  if (spec == "llf") return make_stream_llf();
  if (spec == "gang") return make_gang_edf();
  return make_multijob_scheduler(spec);
}

}  // namespace fhs
