#include "rt/schedulability.hh"

#include "metrics/bounds.hh"

namespace fhs {

Time rt_lower_bound(const KDag& dag, const Cluster& cluster) {
  return completion_time_lower_bound(dag, cluster);
}

bool rt_schedulable(const KDag& dag, const Cluster& cluster, Time deadline) {
  if (deadline <= 0) return true;  // no deadline, nothing to prove
  if (dag.num_types() > cluster.num_types()) return false;
  return rt_lower_bound(dag, cluster) <= deadline;
}

}  // namespace fhs
