// Retry backoff arithmetic (strong-typed home of the PR 8 overflow fix).
//
// Exponential retry backoff is the one place the service multiplies a
// duration by an unbounded power of two, which is exactly how the
// original `base << shift` UB slipped in: at attempt >= 65 the shift
// reached the width of Time.  The strong-typed version keeps the same
// observable clamp semantics -- saturate at kBackoffCeiling, never trap,
// even in debug builds -- by testing against the ceiling BEFORE
// shifting, so checked_shl only ever runs on an in-range value.
#pragma once

#include <cstdint>
#include <limits>

#include "support/checked.hh"

namespace fhs {

/// Exponential retry backoff stops doubling here: attempt n+1 waits
/// base * 2^min(n-1, kMaxBackoffShift).  Without the clamp the shift
/// reaches the width of Time (64 bits) once enough attempts time out,
/// which is undefined behaviour -- and under C++20's wrapping semantics
/// would produce a negative backoff, i.e. a retry arriving in the past.
inline constexpr std::uint32_t kMaxBackoffShift = 16;

/// Backoffs saturate here: max/4, so `cancel time + backoff` cannot
/// overflow either.
inline constexpr VirtualDur kBackoffCeiling{
    std::numeric_limits<std::int64_t>::max() / 4};

/// Virtual ticks attempt `attempts + 1` waits after the `attempts`-th
/// attempt timed out: base * 2^min(attempts-1, kMaxBackoffShift),
/// saturating at kBackoffCeiling.  Pure so the clamp is testable without
/// driving a service through dozens of virtual-time retries.  The
/// ceiling test precedes the shift, so the checked_shl below is always
/// in range (saturation is a documented outcome here, not an error --
/// it must not trap in debug builds).
[[nodiscard]] constexpr VirtualDur backoff_for_attempt(
    VirtualDur base, std::uint32_t attempts) noexcept {
  if (base.raw() <= 0 || attempts == 0) return VirtualDur{0};
  const std::uint32_t shift =
      attempts - 1 < kMaxBackoffShift ? attempts - 1 : kMaxBackoffShift;
  if (base.raw() > (kBackoffCeiling.raw() >> shift)) return kBackoffCeiling;
  return checked_shl(base, shift);
}

}  // namespace fhs
