// Chrome trace-event export of a simulated schedule.
//
// Maps an ExecutionTrace (virtual-time segments of tasks on concrete
// processors) onto the Chrome trace-event JSON format, so a schedule can
// be opened in chrome://tracing or https://ui.perfetto.dev: one "thread"
// per processor (named, grouped by resource type), one complete ("X")
// event per segment, with task id, type, and work in the event args.
// One virtual tick is rendered as one microsecond.
//
// This is the virtual-time sibling of obs/trace.hh, which records
// wall-time spans of the host program itself; both emit the same format.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/kdag.hh"
#include "machine/cluster.hh"
#include "sim/trace.hh"

namespace fhs {

struct ChromeTraceOptions {
  /// Top-level process name shown by the viewer.
  std::string process_name = "fhs simulation";
};

/// Writes one self-contained JSON document ({"traceEvents": [...]}).
void write_chrome_trace(std::ostream& out, const KDag& dag, const Cluster& cluster,
                        const ExecutionTrace& trace,
                        const ChromeTraceOptions& options = {});

}  // namespace fhs
