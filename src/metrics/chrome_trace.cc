#include "metrics/chrome_trace.hh"

#include <ostream>
#include <string>

namespace fhs {

namespace {

// Minimal JSON string quoting.  exp/json.hh has the full escaper, but
// fhs_exp sits above fhs_metrics in the library stack; the labels here
// are code-generated plus one caller-supplied process name.
std::string quoted(const std::string& text) {
  std::string out = "\"";
  for (char ch : text) {
    const auto u = static_cast<unsigned char>(ch);
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (u < 0x20) {
      out += "\\u00";
      out += "0123456789abcdef"[(u >> 4) & 0xf];
      out += "0123456789abcdef"[u & 0xf];
    } else {
      out += ch;
    }
  }
  out += '"';
  return out;
}

ResourceType type_of_processor(const Cluster& cluster, std::uint32_t processor) {
  for (ResourceType a = 0; a < cluster.num_types(); ++a) {
    if (processor >= cluster.offset(a) &&
        processor < cluster.offset(a) + cluster.processors(a)) {
      return a;
    }
  }
  return cluster.num_types();  // out of range; caller emits it unlabeled
}

}  // namespace

void write_chrome_trace(std::ostream& out, const KDag& dag, const Cluster& cluster,
                        const ExecutionTrace& trace, const ChromeTraceOptions& options) {
  out << "{\"traceEvents\": [\n";
  // Viewer metadata: name the process and each processor "thread",
  // sorted so pools group together type by type.
  out << " {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
         "\"args\": {\"name\": "
      << quoted(options.process_name) << "}}";
  for (std::uint32_t p = 0; p < cluster.total_processors(); ++p) {
    const ResourceType a = type_of_processor(cluster, p);
    std::string label = "proc " + std::to_string(p);
    if (a < cluster.num_types()) {
      label += " (type " + std::to_string(a) + ")";
    }
    out << ",\n {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " << p
        << ", \"args\": {\"name\": " << quoted(label) << "}}";
    out << ",\n {\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
        << p << ", \"args\": {\"sort_index\": " << p << "}}";
  }
  // One complete event per segment; one tick == one microsecond.
  for (const TraceSegment& s : trace.segments()) {
    const ResourceType a = s.task < dag.task_count() ? dag.type(s.task)
                                                     : cluster.num_types();
    out << ",\n {\"name\": \"task " << s.task << "\", \"cat\": \"type" << a
        << "\", \"ph\": \"X\", \"ts\": " << s.start << ", \"dur\": " << (s.end - s.start)
        << ", \"pid\": 1, \"tid\": " << s.processor << ", \"args\": {\"task\": " << s.task
        << ", \"type\": " << a;
    if (s.task < dag.task_count()) {
      out << ", \"work\": " << dag.work(s.task);
    }
    out << "}}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

}  // namespace fhs
