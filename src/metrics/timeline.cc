#include "metrics/timeline.hh"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace fhs {

UtilizationTimeline::UtilizationTimeline(const KDag& dag, const Cluster& cluster,
                                         const ExecutionTrace& trace,
                                         std::size_t buckets)
    : buckets_(buckets) {
  if (buckets == 0) throw std::invalid_argument("UtilizationTimeline: buckets == 0");
  if (cluster.num_types() < dag.num_types()) {
    throw std::invalid_argument("UtilizationTimeline: cluster has too few types");
  }
  horizon_ = trace.makespan();
  busy_fraction_.assign(dag.num_types(), std::vector<double>(buckets, 0.0));
  if (horizon_ == 0) return;

  // Split each segment analytically across the buckets it overlaps.
  const double bucket_ticks = static_cast<double>(horizon_) / static_cast<double>(buckets);
  for (const TraceSegment& seg : trace.segments()) {
    if (seg.task >= dag.task_count()) {
      throw std::invalid_argument("UtilizationTimeline: trace references unknown task");
    }
    const ResourceType alpha = dag.type(seg.task);
    auto first = static_cast<std::size_t>(static_cast<double>(seg.start) / bucket_ticks);
    first = std::min(first, buckets - 1);
    for (std::size_t b = first; b < buckets; ++b) {
      const double lo = static_cast<double>(b) * bucket_ticks;
      const double hi = lo + bucket_ticks;
      const double overlap = std::min(hi, static_cast<double>(seg.end)) -
                             std::max(lo, static_cast<double>(seg.start));
      if (overlap <= 0.0) break;
      busy_fraction_[alpha][b] += overlap;
    }
  }
  for (ResourceType a = 0; a < dag.num_types(); ++a) {
    const double capacity = bucket_ticks * static_cast<double>(cluster.processors(a));
    for (double& value : busy_fraction_[a]) {
      value = std::min(1.0, value / capacity);
    }
  }
}

double UtilizationTimeline::mean_utilization(ResourceType alpha) const {
  const auto& row = busy_fraction_.at(alpha);
  double total = 0.0;
  for (double value : row) total += value;
  return total / static_cast<double>(row.size());
}

std::size_t UtilizationTimeline::idle_buckets(ResourceType alpha) const {
  const auto& row = busy_fraction_.at(alpha);
  return static_cast<std::size_t>(
      std::count_if(row.begin(), row.end(), [](double v) { return v < 0.02; }));
}

void UtilizationTimeline::print(std::ostream& out) const {
  for (ResourceType a = 0; a < num_types(); ++a) {
    out << 't' << static_cast<unsigned>(a) << " |";
    for (std::size_t b = 0; b < buckets_; ++b) {
      const double f = busy_fraction_[a][b];
      out << (f >= 0.85 ? '#' : f >= 0.5 ? '+' : f >= 0.15 ? '-' : f >= 0.02 ? '.' : ' ');
    }
    out << "|\n";
  }
}

}  // namespace fhs
