#include "metrics/svg.hh"

#include <algorithm>
#include <array>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fhs {

namespace {

// One fill per resource type (cycled); chosen for contrast on white.
constexpr std::array<const char*, 8> kPalette = {
    "#4e79a7", "#f28e2b", "#59a14f", "#b07aa1",
    "#edc948", "#76b7b2", "#e15759", "#9c755f"};

std::string escape_xml(const std::string& text) {
  std::string out;
  for (char ch : text) {
    switch (ch) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += ch;
    }
  }
  return out;
}

}  // namespace

void write_svg_gantt(std::ostream& out, const KDag& dag, const Cluster& cluster,
                     const ExecutionTrace& trace, const SvgOptions& options) {
  for (const TraceSegment& seg : trace.segments()) {
    if (seg.task >= dag.task_count() || seg.processor >= cluster.total_processors()) {
      throw std::invalid_argument("write_svg_gantt: trace does not match job/cluster");
    }
  }
  const Time horizon = std::max<Time>(trace.makespan(), 1);
  const double left_margin = 64.0;
  const double top_margin = options.title.empty() ? 8.0 : 28.0;
  const double axis_height = 22.0;
  const double lanes_height =
      options.lane_height * static_cast<double>(cluster.total_processors());
  const double total_width = left_margin + options.width + 8.0;
  const double total_height = top_margin + lanes_height + axis_height;
  const double x_per_tick = options.width / static_cast<double>(horizon);

  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << total_width
      << "\" height=\"" << total_height << "\" font-family=\"sans-serif\" "
      << "font-size=\"10\">\n";
  if (!options.title.empty()) {
    out << "  <text x=\"" << left_margin << "\" y=\"18\" font-size=\"13\">"
        << escape_xml(options.title) << "</text>\n";
  }

  // Lane backgrounds + labels, grouped by type.
  for (std::uint32_t p = 0; p < cluster.total_processors(); ++p) {
    const double y = top_margin + options.lane_height * static_cast<double>(p);
    const ResourceType type = cluster.type_of_processor(p);
    out << "  <rect x=\"" << left_margin << "\" y=\"" << y << "\" width=\""
        << options.width << "\" height=\"" << options.lane_height
        << "\" fill=\"" << (type % 2 == 0 ? "#f7f7f7" : "#efefef") << "\"/>\n";
    out << "  <text x=\"4\" y=\"" << y + options.lane_height - 3 << "\">t"
        << static_cast<unsigned>(type) << ".p" << p << "</text>\n";
  }

  // Segments.
  for (const TraceSegment& seg : trace.segments()) {
    const double x = left_margin + x_per_tick * static_cast<double>(seg.start);
    const double w = x_per_tick * static_cast<double>(seg.end - seg.start);
    const double y =
        top_margin + options.lane_height * static_cast<double>(seg.processor) + 1.0;
    const ResourceType type = dag.type(seg.task);
    out << "  <rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << std::max(w, 0.5)
        << "\" height=\"" << options.lane_height - 2.0 << "\" fill=\""
        << kPalette[type % kPalette.size()] << "\"><title>task " << seg.task << " ["
        << seg.start << ", " << seg.end << ")</title></rect>\n";
  }

  // Time axis: 8 ticks.  `horizon * i` overflows int64 for horizons past
  // max/8, so the product saturates instead: axis labels clamp at the
  // rail rather than wrapping negative (the pre-checked.hh expression
  // was undefined behaviour there).
  const double axis_y = top_margin + lanes_height + 12.0;
  for (int i = 0; i <= 8; ++i) {
    const Time t = saturating_mul(horizon, i) / 8;
    const double x = left_margin + x_per_tick * static_cast<double>(t);
    out << "  <line x1=\"" << x << "\" y1=\"" << top_margin + lanes_height
        << "\" x2=\"" << x << "\" y2=\"" << top_margin + lanes_height + 4.0
        << "\" stroke=\"#888\"/>\n";
    out << "  <text x=\"" << x << "\" y=\"" << axis_y + 6.0
        << "\" text-anchor=\"middle\">" << t << "</text>\n";
  }
  out << "</svg>\n";
}

std::string svg_gantt_to_string(const KDag& dag, const Cluster& cluster,
                                const ExecutionTrace& trace, const SvgOptions& options) {
  std::ostringstream out;
  write_svg_gantt(out, dag, cluster, trace, options);
  return out.str();
}

}  // namespace fhs
