// Completion-time lower bound and the paper's performance metric (§V-A).
//
//   L(J) = max( T_inf(J), max_alpha T1(J, alpha) / P_alpha )
//
// Any schedule needs at least the critical-path time and at least enough
// time for the busiest resource type to chew through its total work.  The
// paper reports the *completion time ratio* T(J)/L(J); since the offline
// optimum satisfies L(J) <= T*(J), a ratio of 1 means provably optimal.
#pragma once

#include "graph/kdag.hh"
#include "machine/cluster.hh"

namespace fhs {

/// Lower bound on the completion time of `dag` on `cluster` (in ticks,
/// as an exact rational rounded up: ceil(T1/P) is itself a valid integer
/// lower bound, and T-infinity is integral).
[[nodiscard]] Time completion_time_lower_bound(const KDag& dag, const Cluster& cluster);

/// The same bound without integer rounding (used for ratio reporting so
/// results match the paper's real-valued L(J)).
[[nodiscard]] double fractional_lower_bound(const KDag& dag, const Cluster& cluster);

/// Completion-time ratio T(J)/L(J) (>= 1 up to rounding of T).
[[nodiscard]] double completion_time_ratio(Time completion_time, const KDag& dag,
                                           const Cluster& cluster);

/// Work-per-processor ratio of one type: T1(J, alpha) / P_alpha (§V-E,
/// used to quantify skew).
[[nodiscard]] double work_per_processor(const KDag& dag, const Cluster& cluster,
                                        ResourceType alpha);

}  // namespace fhs
