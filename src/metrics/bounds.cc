#include "metrics/bounds.hh"

#include <algorithm>
#include <stdexcept>

#include "graph/kdag_algorithms.hh"

namespace fhs {

namespace {
void check_types(const KDag& dag, const Cluster& cluster) {
  if (cluster.num_types() < dag.num_types()) {
    throw std::invalid_argument("lower bound: cluster has too few resource types");
  }
}
}  // namespace

Time completion_time_lower_bound(const KDag& dag, const Cluster& cluster) {
  check_types(dag, cluster);
  Time bound = span(dag);
  for (ResourceType alpha = 0; alpha < dag.num_types(); ++alpha) {
    const Work total = dag.total_work(alpha);
    const auto p = static_cast<Work>(cluster.processors(alpha));
    bound = std::max(bound, (total + p - 1) / p);  // ceil
  }
  return bound;
}

double fractional_lower_bound(const KDag& dag, const Cluster& cluster) {
  check_types(dag, cluster);
  double bound = static_cast<double>(span(dag));
  for (ResourceType alpha = 0; alpha < dag.num_types(); ++alpha) {
    bound = std::max(bound, work_per_processor(dag, cluster, alpha));
  }
  return bound;
}

double completion_time_ratio(Time completion_time, const KDag& dag,
                             const Cluster& cluster) {
  const double bound = fractional_lower_bound(dag, cluster);
  if (bound <= 0.0) throw std::logic_error("completion_time_ratio: empty job");
  return static_cast<double>(completion_time) / bound;
}

double work_per_processor(const KDag& dag, const Cluster& cluster, ResourceType alpha) {
  check_types(dag, cluster);
  if (alpha >= dag.num_types()) throw std::out_of_range("work_per_processor: bad type");
  return static_cast<double>(dag.total_work(alpha)) /
         static_cast<double>(cluster.processors(alpha));
}

}  // namespace fhs
