// SVG rendering of execution traces (Gantt charts).
//
// Produces a self-contained SVG: one horizontal lane per processor,
// lanes grouped and labelled by resource type, one rectangle per trace
// segment coloured by the task's type, with a time axis.  No external
// dependencies; the output opens in any browser.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/kdag.hh"
#include "machine/cluster.hh"
#include "sim/trace.hh"

namespace fhs {

struct SvgOptions {
  /// Pixel width of the chart area (time axis scales to fit).
  double width = 960.0;
  /// Pixel height of one processor lane.
  double lane_height = 14.0;
  /// Chart title rendered above the lanes (empty = none).
  std::string title;
};

/// Writes the trace as an SVG document.  Throws std::invalid_argument if
/// the trace references tasks/processors outside the job/cluster.
void write_svg_gantt(std::ostream& out, const KDag& dag, const Cluster& cluster,
                     const ExecutionTrace& trace, const SvgOptions& options = {});

[[nodiscard]] std::string svg_gantt_to_string(const KDag& dag, const Cluster& cluster,
                                              const ExecutionTrace& trace,
                                              const SvgOptions& options = {});

}  // namespace fhs
