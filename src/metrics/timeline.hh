// Per-type utilization timeline derived from an execution trace.
//
// The paper's whole argument is about *when* each resource pool is busy:
// utilization balancing means every pool works throughout the schedule
// instead of taking turns.  UtilizationTimeline buckets the schedule
// horizon and reports, per resource type, the fraction of pool capacity
// that was busy in each bucket -- the data behind the timeline plots in
// EXPERIMENTS.md and the examples' ASCII charts.
#pragma once

#include <iosfwd>
#include <vector>

#include "graph/kdag.hh"
#include "machine/cluster.hh"
#include "sim/trace.hh"

namespace fhs {

class UtilizationTimeline {
 public:
  /// Builds the timeline from a trace.  `buckets` >= 1; the horizon is
  /// the trace makespan (an empty trace yields an all-zero timeline with
  /// horizon 0).
  UtilizationTimeline(const KDag& dag, const Cluster& cluster,
                      const ExecutionTrace& trace, std::size_t buckets);

  [[nodiscard]] ResourceType num_types() const noexcept {
    return static_cast<ResourceType>(busy_fraction_.size());
  }
  [[nodiscard]] std::size_t buckets() const noexcept { return buckets_; }
  [[nodiscard]] Time horizon() const noexcept { return horizon_; }

  /// Busy capacity fraction of type `alpha` in bucket `b`, in [0, 1].
  [[nodiscard]] double busy_fraction(ResourceType alpha, std::size_t bucket) const {
    return busy_fraction_.at(alpha).at(bucket);
  }

  /// Mean utilization of a type over the whole horizon.
  [[nodiscard]] double mean_utilization(ResourceType alpha) const;

  /// Number of buckets in which the pool is essentially idle (< 2% busy).
  [[nodiscard]] std::size_t idle_buckets(ResourceType alpha) const;

  /// One ASCII line per type: ' ' idle, '.' <15%, '-' <50%, '+' <85%,
  /// '#' >= 85% busy.
  void print(std::ostream& out) const;

 private:
  std::size_t buckets_;
  Time horizon_ = 0;
  std::vector<std::vector<double>> busy_fraction_;  // [type][bucket]
};

}  // namespace fhs
