#include "graph/dot.hh"

#include <array>
#include <ostream>
#include <sstream>

namespace fhs {

void write_dot(std::ostream& out, const KDag& dag, const std::string& name) {
  static constexpr std::array<const char*, 8> kPalette = {
      "lightblue", "lightsalmon", "palegreen", "plum",
      "khaki",     "lightcyan",   "mistyrose", "lavender"};
  out << "digraph " << name << " {\n  rankdir=TB;\n  node [style=filled];\n";
  for (TaskId v = 0; v < dag.task_count(); ++v) {
    out << "  t" << v << " [label=\"t" << v << "\\na" << dag.type(v) << " w"
        << dag.work(v) << "\", fillcolor=" << kPalette[dag.type(v) % kPalette.size()]
        << "];\n";
  }
  for (TaskId v = 0; v < dag.task_count(); ++v) {
    for (TaskId child : dag.children(v)) {
      out << "  t" << v << " -> t" << child << ";\n";
    }
  }
  out << "}\n";
}

std::string to_dot(const KDag& dag, const std::string& name) {
  std::ostringstream out;
  write_dot(out, dag, name);
  return out.str();
}

}  // namespace fhs
