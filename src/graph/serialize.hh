// Plain-text serialization of K-DAGs.
//
// Format (whitespace separated, '#' starts a comment line):
//
//   kdag v1 <K> <num_tasks> <num_edges>
//   t <type> <work>          -- one line per task, ids assigned in order
//   e <from> <to>            -- one line per edge
//
// The format is line-oriented and diff-friendly so job instances can be
// checked into test fixtures and exchanged between tools.  read_kdag
// validates through KDagBuilder, so a malformed or cyclic file throws.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/kdag.hh"

namespace fhs {

void write_kdag(std::ostream& out, const KDag& dag);
[[nodiscard]] std::string kdag_to_string(const KDag& dag);

/// Parses a K-DAG; throws std::invalid_argument on malformed input
/// (including trailing content after the record).
[[nodiscard]] KDag read_kdag(std::istream& in);
[[nodiscard]] KDag kdag_from_string(const std::string& text);

/// Reads the next K-DAG record from a stream that may hold several
/// concatenated records (the fhs_serve submission format).  Returns
/// nullopt at clean end of input; throws on a malformed record.
[[nodiscard]] std::optional<KDag> read_next_kdag(std::istream& in);

}  // namespace fhs
