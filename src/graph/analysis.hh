// Offline static analyses over a K-DAG (paper §IV).
//
// These are the quantities the offline heuristics consume:
//
//  * typed descendant values d_alpha(v)  -- MQB (§IV-A):
//        d_alpha(v) = sum over children u of (d_alpha(u) + w_alpha(u)) / pr(u)
//    where pr(u) is u's parent count and w_alpha(u) = work(u) if u is an
//    alpha-task else 0.  A child with multiple parents contributes each of
//    them a 1/pr(u) share.
//
//  * untyped descendant values d(v)      -- MaxDP (§IV-B), same recursion
//    with w(u) = work(u) for every type.
//
//  * different-child distance            -- DType (§IV-B): the minimum
//    number of edges from v to any descendant whose type differs from
//    v's; kNoDifferentDescendant if no such descendant exists.
//
//  * due dates                           -- ShiftBT (§IV-B):
//        due(v) = T_inf(J) - remaining_span(v),
//    the latest start time that cannot delay the job.
//
// All are computed in one reverse-topological pass each and are immutable
// per job, so a JobAnalysis can be shared by concurrent simulations.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "graph/kdag.hh"

namespace fhs {

inline constexpr std::size_t kNoDifferentDescendant =
    std::numeric_limits<std::size_t>::max();

/// Typed descendant values: row-major [task][type].
[[nodiscard]] std::vector<double> typed_descendant_values(const KDag& dag);

/// Untyped descendant values (MaxDP).
[[nodiscard]] std::vector<double> untyped_descendant_values(const KDag& dag);

/// One-step typed descendant values (MQB+1Step, §V-G): only immediate
/// children are counted, d_alpha(v) = sum over children u of w_alpha(u)/pr(u).
[[nodiscard]] std::vector<double> one_step_typed_descendant_values(const KDag& dag);

/// Different-child distance per task (DType).
[[nodiscard]] std::vector<std::size_t> different_child_distance(const KDag& dag);

/// Due dates per task (ShiftBT).  due(v) = span(dag) - remaining_span(v).
[[nodiscard]] std::vector<Time> due_dates(const KDag& dag);

/// Bundle of every analysis a scheduler might request, computed lazily is
/// not worth the branching here -- jobs are small; compute all eagerly.
class JobAnalysis {
 public:
  explicit JobAnalysis(const KDag& dag);

  [[nodiscard]] const KDag& dag() const noexcept { return *dag_; }
  [[nodiscard]] ResourceType num_types() const noexcept { return dag_->num_types(); }

  /// d_alpha(v); full-recursion values.
  [[nodiscard]] double descendant(TaskId v, ResourceType alpha) const {
    return typed_desc_[static_cast<std::size_t>(v) * num_types() + alpha];
  }
  /// Row of d(v, .) over all types.
  [[nodiscard]] std::span<const double> descendant_row(TaskId v) const {
    return {typed_desc_.data() + static_cast<std::size_t>(v) * num_types(),
            num_types()};
  }
  /// One-step-lookahead variant.
  [[nodiscard]] double one_step_descendant(TaskId v, ResourceType alpha) const {
    return one_step_desc_[static_cast<std::size_t>(v) * num_types() + alpha];
  }
  [[nodiscard]] std::span<const double> one_step_descendant_row(TaskId v) const {
    return {one_step_desc_.data() + static_cast<std::size_t>(v) * num_types(),
            num_types()};
  }
  [[nodiscard]] double untyped_descendant(TaskId v) const { return untyped_desc_.at(v); }
  [[nodiscard]] Work remaining_span_of(TaskId v) const { return remaining_span_.at(v); }
  [[nodiscard]] std::size_t different_child_distance_of(TaskId v) const {
    return diff_child_dist_.at(v);
  }
  [[nodiscard]] Time due_date(TaskId v) const { return due_dates_.at(v); }
  [[nodiscard]] Work job_span() const noexcept { return span_; }

 private:
  const KDag* dag_;
  Work span_ = 0;
  std::vector<double> typed_desc_;
  std::vector<double> one_step_desc_;
  std::vector<double> untyped_desc_;
  std::vector<Work> remaining_span_;
  std::vector<std::size_t> diff_child_dist_;
  std::vector<Time> due_dates_;
};

}  // namespace fhs
