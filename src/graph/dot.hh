// Graphviz DOT export of a K-DAG, for documentation and debugging.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/kdag.hh"

namespace fhs {

/// Writes the DAG in DOT format.  Tasks are labelled "t<id> a<type> w<work>"
/// and coloured per type (cycling an 8-colour palette).
void write_dot(std::ostream& out, const KDag& dag, const std::string& name = "kdag");

/// Convenience wrapper returning the DOT text.
[[nodiscard]] std::string to_dot(const KDag& dag, const std::string& name = "kdag");

}  // namespace fhs
