#include "graph/analysis.hh"

#include <algorithm>

#include "graph/kdag_algorithms.hh"

namespace fhs {

std::vector<double> typed_descendant_values(const KDag& dag) {
  const std::size_t n = dag.task_count();
  const std::size_t k = dag.num_types();
  std::vector<double> d(n * k, 0.0);
  const auto order = dag.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId v = *it;
    double* row = d.data() + static_cast<std::size_t>(v) * k;
    for (TaskId u : dag.children(v)) {
      const double share = 1.0 / static_cast<double>(dag.parent_count(u));
      const double* child_row = d.data() + static_cast<std::size_t>(u) * k;
      for (std::size_t a = 0; a < k; ++a) row[a] += child_row[a] * share;
      row[dag.type(u)] += static_cast<double>(dag.work(u)) * share;
    }
  }
  return d;
}

std::vector<double> one_step_typed_descendant_values(const KDag& dag) {
  const std::size_t n = dag.task_count();
  const std::size_t k = dag.num_types();
  std::vector<double> d(n * k, 0.0);
  for (TaskId v = 0; v < n; ++v) {
    double* row = d.data() + static_cast<std::size_t>(v) * k;
    for (TaskId u : dag.children(v)) {
      const double share = 1.0 / static_cast<double>(dag.parent_count(u));
      row[dag.type(u)] += static_cast<double>(dag.work(u)) * share;
    }
  }
  return d;
}

std::vector<double> untyped_descendant_values(const KDag& dag) {
  const std::size_t n = dag.task_count();
  std::vector<double> d(n, 0.0);
  const auto order = dag.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId v = *it;
    for (TaskId u : dag.children(v)) {
      const double share = 1.0 / static_cast<double>(dag.parent_count(u));
      d[v] += (d[u] + static_cast<double>(dag.work(u))) * share;
    }
  }
  return d;
}

std::vector<std::size_t> different_child_distance(const KDag& dag) {
  const std::size_t n = dag.task_count();
  std::vector<std::size_t> dist(n, kNoDifferentDescendant);
  const auto order = dag.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId v = *it;
    for (TaskId u : dag.children(v)) {
      std::size_t via;
      if (dag.type(u) != dag.type(v)) {
        via = 1;
      } else if (dist[u] != kNoDifferentDescendant) {
        via = dist[u] + 1;
      } else {
        continue;
      }
      dist[v] = std::min(dist[v], via);
    }
  }
  return dist;
}

std::vector<Time> due_dates(const KDag& dag) {
  const std::vector<Work> rem = remaining_span(dag);
  const Work total_span = *std::max_element(rem.begin(), rem.end());
  std::vector<Time> due(dag.task_count());
  for (std::size_t v = 0; v < dag.task_count(); ++v) {
    due[v] = total_span - rem[v];
  }
  return due;
}

JobAnalysis::JobAnalysis(const KDag& dag)
    : dag_(&dag),
      typed_desc_(typed_descendant_values(dag)),
      one_step_desc_(one_step_typed_descendant_values(dag)),
      untyped_desc_(untyped_descendant_values(dag)),
      remaining_span_(remaining_span(dag)),
      diff_child_dist_(different_child_distance(dag)) {
  span_ = *std::max_element(remaining_span_.begin(), remaining_span_.end());
  due_dates_.resize(dag.task_count());
  for (std::size_t v = 0; v < dag.task_count(); ++v) {
    due_dates_[v] = span_ - remaining_span_[v];
  }
}

}  // namespace fhs
