#include "graph/kdag_algorithms.hh"

#include <algorithm>
#include <stdexcept>

namespace fhs {

std::vector<Work> remaining_span(const KDag& dag) {
  std::vector<Work> result(dag.task_count(), 0);
  const auto order = dag.topological_order();
  // Reverse topological order: children before parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId v = *it;
    Work best_child = 0;
    for (TaskId child : dag.children(v)) {
      best_child = std::max(best_child, result[child]);
    }
    result[v] = dag.work(v) + best_child;
  }
  return result;
}

std::vector<Work> top_span(const KDag& dag) {
  std::vector<Work> result(dag.task_count(), 0);
  for (TaskId v : dag.topological_order()) {
    Work best_parent = 0;
    for (TaskId parent : dag.parents(v)) {
      best_parent = std::max(best_parent, result[parent]);
    }
    result[v] = dag.work(v) + best_parent;
  }
  return result;
}

Work span(const KDag& dag) {
  Work best = 0;
  for (Work s : top_span(dag)) best = std::max(best, s);
  return best;
}

std::vector<std::size_t> depth(const KDag& dag) {
  std::vector<std::size_t> result(dag.task_count(), 0);
  for (TaskId v : dag.topological_order()) {
    for (TaskId parent : dag.parents(v)) {
      result[v] = std::max(result[v], result[parent] + 1);
    }
  }
  return result;
}

std::size_t height(const KDag& dag) {
  std::size_t best = 0;
  for (std::size_t d : depth(dag)) best = std::max(best, d);
  return best;
}

std::vector<std::size_t> exact_descendant_counts(const KDag& dag) {
  const std::size_t n = dag.task_count();
  const std::size_t words = (n + 63) / 64;
  // reach[v] = bitset of tasks reachable from v (excluding v).
  std::vector<std::uint64_t> reach(n * words, 0);
  const auto order = dag.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId v = *it;
    std::uint64_t* row = reach.data() + static_cast<std::size_t>(v) * words;
    for (TaskId child : dag.children(v)) {
      const std::uint64_t* child_row =
          reach.data() + static_cast<std::size_t>(child) * words;
      for (std::size_t w = 0; w < words; ++w) row[w] |= child_row[w];
      row[child / 64] |= (1ULL << (child % 64));
    }
  }
  std::vector<std::size_t> counts(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint64_t* row = reach.data() + v * words;
    std::size_t total = 0;
    for (std::size_t w = 0; w < words; ++w) {
      total += static_cast<std::size_t>(__builtin_popcountll(row[w]));
    }
    counts[v] = total;
  }
  return counts;
}

std::vector<TaskId> critical_path(const KDag& dag) {
  const std::vector<Work> rem = remaining_span(dag);
  // Start at the root maximizing remaining span (smallest id on ties),
  // then repeatedly step to the child continuing the longest chain.
  TaskId current = kInvalidTask;
  for (TaskId root : dag.roots()) {
    if (current == kInvalidTask || rem[root] > rem[current]) current = root;
  }
  std::vector<TaskId> path;
  path.push_back(current);
  while (dag.child_count(current) > 0) {
    TaskId next = kInvalidTask;
    for (TaskId child : dag.children(current)) {
      if (next == kInvalidTask || rem[child] > rem[next] ||
          (rem[child] == rem[next] && child < next)) {
        next = child;
      }
    }
    path.push_back(next);
    current = next;
  }
  return path;
}

bool precedes(const KDag& dag, TaskId u, TaskId v) {
  if (u >= dag.task_count() || v >= dag.task_count()) {
    throw std::out_of_range("precedes: bad task id");
  }
  if (u == v) return false;
  // DFS from u looking for v.
  std::vector<bool> visited(dag.task_count(), false);
  std::vector<TaskId> stack{u};
  visited[u] = true;
  while (!stack.empty()) {
    const TaskId cur = stack.back();
    stack.pop_back();
    for (TaskId child : dag.children(cur)) {
      if (child == v) return true;
      if (!visited[child]) {
        visited[child] = true;
        stack.push_back(child);
      }
    }
  }
  return false;
}

}  // namespace fhs
