#include "graph/kdag.hh"

#include <algorithm>
#include <stdexcept>

namespace fhs {

KDagBuilder::KDagBuilder(ResourceType num_types) : num_types_(num_types) {
  if (num_types == 0 || num_types > kMaxResourceTypes) {
    throw std::invalid_argument("KDagBuilder: K must be in [1, " +
                                std::to_string(kMaxResourceTypes) + "]");
  }
}

TaskId KDagBuilder::add_task(ResourceType type, Work work) {
  if (type >= num_types_) {
    throw std::invalid_argument("KDagBuilder: task type " + std::to_string(type) +
                                " out of range (K=" + std::to_string(num_types_) + ")");
  }
  if (work < 1) {
    throw std::invalid_argument("KDagBuilder: task work must be >= 1 tick");
  }
  if (types_.size() >= static_cast<std::size_t>(kInvalidTask)) {
    throw std::length_error("KDagBuilder: too many tasks");
  }
  types_.push_back(type);
  works_.push_back(work);
  return static_cast<TaskId>(types_.size() - 1);
}

void KDagBuilder::add_edge(TaskId from, TaskId to) {
  const auto n = static_cast<TaskId>(types_.size());
  if (from >= n || to >= n) {
    throw std::invalid_argument("KDagBuilder: edge endpoint out of range");
  }
  if (from == to) {
    throw std::invalid_argument("KDagBuilder: self-loop on task " + std::to_string(from));
  }
  edges_.emplace_back(from, to);
}

KDag KDagBuilder::build() && {
  if (types_.empty()) throw std::invalid_argument("KDagBuilder: job has no tasks");
  const std::size_t n = types_.size();

  // Collapse duplicate edges so parent counts are exact.
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  KDag dag;
  dag.num_types_ = num_types_;
  dag.types_ = std::move(types_);
  dag.works_ = std::move(works_);

  // CSR children (edges_ already sorted by `from`).
  dag.child_offset_.assign(n + 1, 0);
  for (const auto& [from, to] : edges_) {
    (void)to;
    ++dag.child_offset_[from + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) dag.child_offset_[i] += dag.child_offset_[i - 1];
  dag.child_list_.reserve(edges_.size());
  for (const auto& [from, to] : edges_) {
    (void)from;
    dag.child_list_.push_back(to);
  }

  // CSR parents via counting sort by `to`.
  dag.parent_offset_.assign(n + 1, 0);
  for (const auto& [from, to] : edges_) {
    (void)from;
    ++dag.parent_offset_[to + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) dag.parent_offset_[i] += dag.parent_offset_[i - 1];
  dag.parent_list_.resize(edges_.size());
  {
    std::vector<std::uint32_t> cursor(dag.parent_offset_.begin(),
                                      dag.parent_offset_.end() - 1);
    for (const auto& [from, to] : edges_) {
      dag.parent_list_[cursor[to]++] = from;
    }
  }

  // Kahn's algorithm: topological order + acyclicity check + roots.
  std::vector<std::uint32_t> indegree(n);
  for (std::size_t v = 0; v < n; ++v) {
    indegree[v] = dag.parent_offset_[v + 1] - dag.parent_offset_[v];
  }
  dag.topo_order_.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (indegree[v] == 0) {
      dag.topo_order_.push_back(static_cast<TaskId>(v));
      dag.roots_.push_back(static_cast<TaskId>(v));
    }
  }
  for (std::size_t head = 0; head < dag.topo_order_.size(); ++head) {
    const TaskId v = dag.topo_order_[head];
    for (TaskId child : dag.children(v)) {
      if (--indegree[child] == 0) dag.topo_order_.push_back(child);
    }
  }
  if (dag.topo_order_.size() != n) {
    throw std::invalid_argument("KDagBuilder: precedence graph contains a cycle");
  }

  dag.work_per_type_.assign(num_types_, 0);
  dag.count_per_type_.assign(num_types_, 0);
  for (std::size_t v = 0; v < n; ++v) {
    dag.work_per_type_[dag.types_[v]] += dag.works_[v];
    ++dag.count_per_type_[dag.types_[v]];
    dag.total_work_ += dag.works_[v];
  }
  return dag;
}

std::span<const TaskId> KDag::children(TaskId v) const {
  if (v >= task_count()) throw std::out_of_range("KDag::children: bad task id");
  return {child_list_.data() + child_offset_[v],
          child_list_.data() + child_offset_[v + 1]};
}

std::span<const TaskId> KDag::parents(TaskId v) const {
  if (v >= task_count()) throw std::out_of_range("KDag::parents: bad task id");
  return {parent_list_.data() + parent_offset_[v],
          parent_list_.data() + parent_offset_[v + 1]};
}

}  // namespace fhs
