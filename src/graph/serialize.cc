#include "graph/serialize.hh"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fhs {

void write_kdag(std::ostream& out, const KDag& dag) {
  out << "kdag v1 " << static_cast<unsigned>(dag.num_types()) << ' ' << dag.task_count()
      << ' ' << dag.edge_count() << '\n';
  for (TaskId v = 0; v < dag.task_count(); ++v) {
    out << "t " << static_cast<unsigned>(dag.type(v)) << ' ' << dag.work(v) << '\n';
  }
  for (TaskId v = 0; v < dag.task_count(); ++v) {
    for (TaskId child : dag.children(v)) {
      out << "e " << v << ' ' << child << '\n';
    }
  }
}

std::string kdag_to_string(const KDag& dag) {
  std::ostringstream out;
  write_kdag(out, dag);
  return out.str();
}

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("read_kdag: " + message);
}

/// Reads the next content line (skipping blanks and '#' comments).
bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

namespace {

KDag read_one_kdag(std::istream& in, std::string header_line) {
  std::string line = std::move(header_line);
  std::istringstream header(line);
  std::string magic;
  std::string version;
  std::uint64_t num_types = 0;
  std::uint64_t num_tasks = 0;
  std::uint64_t num_edges = 0;
  header >> magic >> version >> num_types >> num_tasks >> num_edges;
  if (header.fail() || magic != "kdag" || version != "v1") {
    fail("bad header '" + line + "'");
  }
  if (num_types == 0 || num_types > kMaxResourceTypes) fail("bad K in header");

  KDagBuilder builder(static_cast<ResourceType>(num_types));
  for (std::uint64_t i = 0; i < num_tasks; ++i) {
    if (!next_line(in, line)) fail("unexpected end of input in task section");
    std::istringstream row(line);
    std::string tag;
    std::uint64_t type = 0;
    Work work = 0;
    row >> tag >> type >> work;
    if (row.fail() || tag != "t") fail("bad task line '" + line + "'");
    if (type >= num_types) fail("task type out of range in '" + line + "'");
    (void)builder.add_task(static_cast<ResourceType>(type), work);
  }
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    if (!next_line(in, line)) fail("unexpected end of input in edge section");
    std::istringstream row(line);
    std::string tag;
    std::uint64_t from = 0;
    std::uint64_t to = 0;
    row >> tag >> from >> to;
    if (row.fail() || tag != "e") fail("bad edge line '" + line + "'");
    if (from >= num_tasks || to >= num_tasks) fail("edge endpoint out of range");
    builder.add_edge(static_cast<TaskId>(from), static_cast<TaskId>(to));
  }
  return std::move(builder).build();
}

}  // namespace

KDag read_kdag(std::istream& in) {
  std::string line;
  if (!next_line(in, line)) fail("empty input");
  KDag dag = read_one_kdag(in, std::move(line));
  if (next_line(in, line)) fail("trailing content '" + line + "'");
  return dag;
}

std::optional<KDag> read_next_kdag(std::istream& in) {
  std::string line;
  if (!next_line(in, line)) return std::nullopt;
  return read_one_kdag(in, std::move(line));
}

KDag kdag_from_string(const std::string& text) {
  std::istringstream in(text);
  return read_kdag(in);
}

}  // namespace fhs
