// K-DAG job model (paper §II).
//
// A job J is a directed acyclic graph whose tasks each carry a resource
// type alpha in [0, K) and an integer work amount T1(v, alpha) >= 1.  An
// alpha-task may execute only on an alpha-processor.  An edge (u, v)
// means v cannot start before u completes, regardless of types.
//
// KDag is immutable after construction (via KDagBuilder::build), stores
// its edges in CSR form (children and parents), and caches a topological
// order.  All scheduling-time state (remaining parents, remaining work)
// lives in the simulator, so one KDag can be scheduled many times and
// shared across threads.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "support/checked.hh"

namespace fhs {

using TaskId = std::uint32_t;
using ResourceType = std::uint32_t;
using Work = std::int64_t;
/// Raw interchange representation of a virtual-time instant.  `Time` is
/// the wire/boundary type (parsers, JSON, public module APIs); hot-path
/// arithmetic inside DETERMINISTIC/HOT modules goes through the strong
/// types in support/checked.hh (VirtualTime/VirtualDur/Credit), which
/// share this representation.  fhs-lint: allow(time-arith)
using Time = VirtualTime::rep;

inline constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();
/// Hard cap on the number of resource types: keeps per-type arrays small
/// and catches corrupted type values early.  The paper evaluates K <= 6.
inline constexpr ResourceType kMaxResourceTypes = 64;

class KDag;

/// Incremental builder; validates and freezes into a KDag.
class KDagBuilder {
 public:
  /// `num_types` is K, the number of resource types (>= 1).
  explicit KDagBuilder(ResourceType num_types);

  /// Adds a task of the given type with the given work (>= 1 tick).
  /// Returns its id (ids are dense, starting at 0).
  TaskId add_task(ResourceType type, Work work);

  /// Adds a precedence edge from `from` to `to` (from must finish first).
  /// Self-loops and out-of-range ids throw; duplicate edges are collapsed.
  void add_edge(TaskId from, TaskId to);

  [[nodiscard]] std::size_t task_count() const noexcept { return types_.size(); }

  /// Validates (acyclicity, non-empty) and produces the immutable KDag.
  /// Throws std::invalid_argument on a cyclic graph or an empty job.
  [[nodiscard]] KDag build() &&;

 private:
  friend class KDag;
  ResourceType num_types_;
  std::vector<ResourceType> types_;
  std::vector<Work> works_;
  std::vector<std::pair<TaskId, TaskId>> edges_;
};

/// Immutable K-DAG.
class KDag {
 public:
  KDag() = default;

  [[nodiscard]] ResourceType num_types() const noexcept { return num_types_; }
  [[nodiscard]] std::size_t task_count() const noexcept { return types_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return child_list_.size(); }

  [[nodiscard]] ResourceType type(TaskId v) const { return types_.at(v); }
  [[nodiscard]] Work work(TaskId v) const { return works_.at(v); }

  /// Children of v (tasks that depend on v), in insertion order.
  [[nodiscard]] std::span<const TaskId> children(TaskId v) const;
  /// Parents of v (tasks v depends on).
  [[nodiscard]] std::span<const TaskId> parents(TaskId v) const;
  [[nodiscard]] std::size_t child_count(TaskId v) const { return children(v).size(); }
  [[nodiscard]] std::size_t parent_count(TaskId v) const { return parents(v).size(); }

  /// A topological order of all tasks (parents before children).
  [[nodiscard]] std::span<const TaskId> topological_order() const noexcept {
    return topo_order_;
  }

  /// Tasks with no parents (ready at time 0).
  [[nodiscard]] std::span<const TaskId> roots() const noexcept { return roots_; }

  /// Total work of alpha-tasks, T1(J, alpha) (paper §II).
  [[nodiscard]] Work total_work(ResourceType alpha) const { return work_per_type_.at(alpha); }
  /// Total work over all types, T1(J).
  [[nodiscard]] Work total_work() const noexcept { return total_work_; }
  /// Number of alpha-tasks, |V(J, alpha)|.
  [[nodiscard]] std::size_t task_count(ResourceType alpha) const {
    return count_per_type_.at(alpha);
  }

 private:
  friend class KDagBuilder;

  ResourceType num_types_ = 0;
  std::vector<ResourceType> types_;
  std::vector<Work> works_;
  // CSR adjacency, children and parents.
  std::vector<std::uint32_t> child_offset_;  // size n+1
  std::vector<TaskId> child_list_;
  std::vector<std::uint32_t> parent_offset_;  // size n+1
  std::vector<TaskId> parent_list_;
  std::vector<TaskId> topo_order_;
  std::vector<TaskId> roots_;
  std::vector<Work> work_per_type_;
  std::vector<std::size_t> count_per_type_;
  Work total_work_ = 0;
};

}  // namespace fhs
