// Structural algorithms over K-DAGs that are independent of scheduling
// policy: span (critical path), depth, reachability, and validation
// helpers used by the workload generators and tests.
#pragma once

#include <vector>

#include "graph/kdag.hh"

namespace fhs {

/// Critical-path length T-infinity(J): the maximum total work along any
/// precedence chain (paper §II).
[[nodiscard]] Work span(const KDag& dag);

/// Remaining span of every task: the task's own work plus the longest
/// chain of work through its descendants.  remaining_span[v] >= work(v).
[[nodiscard]] std::vector<Work> remaining_span(const KDag& dag);

/// Top span of every task: the longest chain of work ending at (and
/// including) the task.  The job span is max over tasks of top_span.
[[nodiscard]] std::vector<Work> top_span(const KDag& dag);

/// Depth (number of edges on the longest path from a root) per task.
[[nodiscard]] std::vector<std::size_t> depth(const KDag& dag);

/// Number of tasks reachable from v (excluding v itself) -- exact
/// descendant counts via bitsets; O(n^2/64).  Intended for tests and
/// small graphs, not for scheduling (schedulers use the paper's
/// approximate descendant values from graph/analysis.hh).
[[nodiscard]] std::vector<std::size_t> exact_descendant_counts(const KDag& dag);

/// True if u precedes v (u != v and there is a path u -> v).
[[nodiscard]] bool precedes(const KDag& dag, TaskId u, TaskId v);

/// Longest path measured in edges from any root to any sink.
[[nodiscard]] std::size_t height(const KDag& dag);

/// One concrete critical path: a root-to-sink task sequence whose total
/// work equals span(dag).  Ties are broken toward the smallest task id,
/// so the result is deterministic.
[[nodiscard]] std::vector<TaskId> critical_path(const KDag& dag);

}  // namespace fhs
