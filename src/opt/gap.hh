// Optimality-gap harness (EXPERIMENTS E19).
//
// Every experiment table E1-E18 reports T(J)/L(J), the completion-time
// ratio against the paper's lower bound.  This harness additionally
// solves each instance exactly (opt/bnb) and decomposes that ratio:
//
//     T(J)/L(J)  =  T(J)/OPT(J)  *  OPT(J)/L(J)
//                   ^ policy gap     ^ bound gap
//
// so "all policies cluster at ~1.2" can finally be attributed: how much
// is scheduling loss and how much is L(J) being loose on the workload.
//
// Instance seeding mirrors exp/sweep exactly -- instance i draws
// Rng(mix_seed(seed, i)) for the (job, cluster) pair and scheduler s
// runs with mix_seed(seed, i, s + 1) -- so instance i here is instance i
// of an equivalent run_experiment, just restricted to sizes the exact
// solver can handle.  Instances run sequentially; each exact solve fans
// out over the worker pool internally, so results are identical at any
// thread count (the B&B determinism contract).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/runner.hh"
#include "opt/bnb.hh"
#include "sched/scheduler_spec.hh"
#include "support/stats.hh"
#include "workload/workload.hh"

namespace fhs {

struct GapSpec {
  std::string name;
  /// Workload to draw instances from.  Must be capped so every draw has
  /// at most kBnbMaxTasks tasks (e.g. TreeParams.max_tasks = 20);
  /// run_gap_study throws on the first oversized instance.
  WorkloadParams workload;
  ClusterParams cluster;
  std::vector<SchedulerSpec> schedulers;
  std::size_t instances = 24;
  std::uint64_t seed = 42;
  /// Worker threads for each exact solve (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Solver knobs; the `threads` field above overrides bnb.threads.
  BnbOptions bnb;
};

/// Per-policy decomposition across the instance set.
struct PolicyGap {
  std::string scheduler;
  /// True policy gap T(J)/OPT(J).
  RunningStats ratio_to_opt;
  /// The ratio every other experiment reports, T(J)/L(J), on the same
  /// instances (for side-by-side comparison).
  RunningStats ratio_to_bound;
  /// Instances where the policy's schedule was exactly optimal.
  std::size_t optimal_hits = 0;
};

struct InstanceOptimum {
  std::size_t tasks = 0;
  BnbResult exact;
};

struct GapResult {
  GapSpec spec;
  /// Exact solve per instance, in instance order (golden files pin these).
  std::vector<InstanceOptimum> per_instance;
  std::vector<PolicyGap> policies;
  /// Bound gap OPT(J)/L(J) across instances.
  RunningStats bound_gap;
  /// Nodes expanded per instance (search effort).
  RunningStats nodes;
  /// Instances solved to proven optimality within the node budget.
  std::size_t proven = 0;
};

/// Runs the study (non-preemptive mode; the exact optimum is
/// non-preemptive).  Throws std::invalid_argument on an empty scheduler
/// list, zero instances, or an instance draw exceeding kBnbMaxTasks.
[[nodiscard]] GapResult run_gap_study(const GapSpec& spec);

/// Human-readable gap-decomposition table (support/table format).
void print_gap_table(std::ostream& out, const GapResult& result);

/// JSON document: header, per-instance optima, per-policy stats.
void write_json(std::ostream& out, const GapResult& result);

}  // namespace fhs
