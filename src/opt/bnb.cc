#include "opt/bnb.hh"

#include <algorithm>
#include <deque>
#include <iterator>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "metrics/bounds.hh"
#include "sched/registry.hh"
#include "support/parallel.hh"
#include "support/rng.hh"

namespace fhs {
namespace {

struct RunSlot {
  TaskId task = kInvalidTask;
  Time finish = 0;
};

/// One decision point: the completion state plus the running tasks.
/// `running` is kept in ascending task-id order so dominance entries
/// align positionally with the bits of `running_mask`.
struct SearchState {
  std::uint64_t completed = 0;
  std::uint64_t running_mask = 0;
  Time now = 0;
  std::vector<RunSlot> running;
};

struct DomKey {
  std::uint64_t completed = 0;
  std::uint64_t running_mask = 0;
  friend bool operator==(const DomKey&, const DomKey&) = default;
};

struct DomKeyHash {
  std::size_t operator()(const DomKey& key) const noexcept {
    return static_cast<std::size_t>(mix_seed(key.completed, key.running_mask));
  }
};

/// (now, finish times in running-mask bit order).  `a` dominates `b`
/// when every component of `a` is <= the matching component of `b`:
/// every continuation of `b` is then feasible from `a` no later.
struct DomEntry {
  Time now = 0;
  std::vector<Time> finish;
};

bool dominates(const DomEntry& a, const DomEntry& b) {
  if (a.now > b.now) return false;
  for (std::size_t i = 0; i < a.finish.size(); ++i) {
    if (a.finish[i] > b.finish[i]) return false;
  }
  return true;
}

/// Dominance tables are per-subproblem; capping the key count makes
/// pathological instances degrade to a slower search instead of
/// unbounded memory (lookups stay sound, inserts stop).
constexpr std::size_t kMaxDominanceKeys = std::size_t{1} << 21;

/// Children materialized per expansion before the search visits them.
/// Wide-open instances (many ready tasks, many free processors) have
/// exponentially many per-type subsets; failing loudly beats paging.
constexpr std::size_t kMaxChildrenPerNode = std::size_t{1} << 20;

/// Branch-and-bound over one (sub)tree.  Each instance owns its
/// dominance table and incumbent stream, so a run's node counts depend
/// only on the root state and the seed values -- never on sibling
/// subproblems or thread scheduling.
class Solver {
 public:
  Solver(const KDag& dag, const Cluster& cluster, const BnbOptions& options,
         std::span<const Work> tail_below)
      : dag_(dag),
        cluster_(cluster),
        options_(options),
        tail_below_(tail_below),
        num_tasks_(dag.task_count()),
        full_mask_(bit_below(num_tasks_)),
        path_finish_(num_tasks_, 0),
        slot_finish_(num_tasks_, 0),
        remaining_(dag.num_types(), 0),
        ready_(dag.num_types()),
        choices_(dag.num_types()) {}

  /// Installs the best-makespan-so-far this solver starts from.
  /// `from_incumbent` attributes bound prunes to the warm start until
  /// the search improves on it.
  void seed(Time best, bool have, bool from_incumbent) {
    best_ = best;
    have_best_ = have;
    best_is_incumbent_ = from_incumbent;
  }

  /// Visits `state` and, if it survives the prunes, returns its
  /// children in deterministic order (largest start-sets first).
  [[nodiscard]] std::vector<SearchState> expand(const SearchState& state) {
    std::vector<SearchState> children;
    if (exhausted_) return children;
    if (stats.nodes_expanded >= options_.max_nodes) {
      exhausted_ = true;
      return children;
    }
    ++stats.nodes_expanded;
    if (state.completed == full_mask_) {
      record_solution(state.now);
      return children;
    }
    if (options_.prune_bound && have_best_ && state_lower_bound(state) >= best_) {
      if (best_is_incumbent_) {
        ++stats.pruned_incumbent;
      } else {
        ++stats.pruned_bound;
      }
      return children;
    }
    if (options_.prune_dominance && !dominance_admit(state)) {
      ++stats.pruned_dominance;
      return children;
    }
    generate_children(state, children);
    stats.children_generated += children.size();
    return children;
  }

  /// Depth-first search of the whole subtree under `state`.
  void search(const SearchState& state) {
    const std::vector<SearchState> children = expand(state);
    for (const SearchState& child : children) {
      if (exhausted_) break;
      search(child);
    }
  }

  [[nodiscard]] Time best() const noexcept { return best_; }
  [[nodiscard]] bool has_best() const noexcept { return have_best_; }
  [[nodiscard]] bool best_is_incumbent() const noexcept { return best_is_incumbent_; }
  [[nodiscard]] bool exhausted() const noexcept { return exhausted_; }

  BnbStats stats;

 private:
  static std::uint64_t bit_below(std::size_t count) noexcept {
    return count >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << count) - 1;
  }

  void record_solution(Time makespan) {
    if (!have_best_ || makespan < best_) {
      best_ = makespan;
      have_best_ = true;
      best_is_incumbent_ = false;
    }
  }

  /// Lower bound on any completion reachable from `state`: the per-type
  /// machine bound (remaining work, including the unfinished part of
  /// running tasks, spread over P_alpha from `now`) and the precedence
  /// bound (earliest-finish forward pass plus the longest chain below).
  [[nodiscard]] Time state_lower_bound(const SearchState& state) {
    Time bound = state.now;
    std::fill(remaining_.begin(), remaining_.end(), Work{0});
    const std::uint64_t started = state.completed | state.running_mask;
    for (TaskId v = 0; v < num_tasks_; ++v) {
      if ((started >> v) & 1u) continue;
      remaining_[dag_.type(v)] += dag_.work(v);
    }
    for (const RunSlot& slot : state.running) {
      remaining_[dag_.type(slot.task)] += slot.finish - state.now;
      slot_finish_[slot.task] = slot.finish;
    }
    for (ResourceType alpha = 0; alpha < dag_.num_types(); ++alpha) {
      if (remaining_[alpha] <= 0) continue;
      const Work pool = cluster_.processors(alpha);
      bound = std::max(bound, state.now + (remaining_[alpha] + pool - 1) / pool);
    }
    for (const TaskId v : dag_.topological_order()) {
      if ((state.completed >> v) & 1u) continue;
      Time finish = 0;
      if ((state.running_mask >> v) & 1u) {
        finish = slot_finish_[v];
      } else {
        Time start = state.now;
        for (const TaskId parent : dag_.parents(v)) {
          if ((state.completed >> parent) & 1u) continue;
          start = std::max(start, path_finish_[parent]);
        }
        finish = start + dag_.work(v);
      }
      path_finish_[v] = finish;
      bound = std::max(bound, finish + tail_below_[v]);
    }
    return bound;
  }

  /// Returns false when an already-seen state dominates `state`;
  /// otherwise records `state` (displacing entries it dominates).
  [[nodiscard]] bool dominance_admit(const SearchState& state) {
    DomEntry entry;
    entry.now = state.now;
    entry.finish.reserve(state.running.size());
    for (const RunSlot& slot : state.running) entry.finish.push_back(slot.finish);
    const DomKey key{state.completed, state.running_mask};
    auto found = seen_.find(key);
    // Lookup-miss check, not iteration -- no order is observed.
    if (found == seen_.end()) {  // fhs-lint: allow(unordered-iter)
      if (seen_.size() >= kMaxDominanceKeys) return true;
      seen_.emplace(key, std::vector<DomEntry>{std::move(entry)});
      return true;
    }
    std::vector<DomEntry>& entries = found->second;
    for (const DomEntry& existing : entries) {
      if (dominates(existing, entry)) return false;
    }
    std::erase_if(entries,
                  [&entry](const DomEntry& existing) { return dominates(entry, existing); });
    entries.push_back(std::move(entry));
    return true;
  }

  /// All per-type start subsets of `ready` tasks within free capacity,
  /// composed across types; each choice is advanced to the next
  /// completion event.  Subsets are emitted largest-first so greedy-like
  /// schedules come first, and the empty global choice (deliberate
  /// idling until the next completion) comes last.
  void generate_children(const SearchState& state, std::vector<SearchState>& out) {
    const ResourceType num_types = dag_.num_types();
    const std::uint64_t started = state.completed | state.running_mask;
    for (ResourceType alpha = 0; alpha < num_types; ++alpha) ready_[alpha].clear();
    for (TaskId v = 0; v < num_tasks_; ++v) {
      if ((started >> v) & 1u) continue;
      bool runnable = true;
      for (const TaskId parent : dag_.parents(v)) {
        if (((state.completed >> parent) & 1u) == 0) {
          runnable = false;
          break;
        }
      }
      if (runnable) ready_[dag_.type(v)].push_back(v);
    }
    for (ResourceType alpha = 0; alpha < num_types; ++alpha) {
      std::size_t busy = 0;
      for (const RunSlot& slot : state.running) {
        if (dag_.type(slot.task) == alpha) ++busy;
      }
      const std::size_t free_slots = cluster_.processors(alpha) - busy;
      choices_[alpha].clear();
      subsets_of(ready_[alpha], std::min(free_slots, ready_[alpha].size()),
                 choices_[alpha]);
    }
    compose_choices(state, 0, 0, out);
  }

  /// Appends every subset mask of `tasks` with size <= `take_max`,
  /// ordered by descending size then lexicographic combination order.
  /// The empty subset is always last.
  void subsets_of(const std::vector<TaskId>& tasks, std::size_t take_max,
                  std::vector<std::uint64_t>& out) {
    for (std::size_t take = take_max; take > 0; --take) {
      emit_combinations(tasks, take, 0, 0, out);
    }
    out.push_back(0);
  }

  void emit_combinations(const std::vector<TaskId>& tasks, std::size_t take,
                         std::size_t start, std::uint64_t chosen,
                         std::vector<std::uint64_t>& out) {
    if (take == 0) {
      out.push_back(chosen);
      return;
    }
    for (std::size_t i = start; i + take <= tasks.size(); ++i) {
      emit_combinations(tasks, take - 1, i + 1,
                        chosen | (std::uint64_t{1} << tasks[i]), out);
    }
  }

  void compose_choices(const SearchState& state, ResourceType alpha,
                       std::uint64_t chosen, std::vector<SearchState>& out) {
    if (alpha == dag_.num_types()) {
      if (chosen == 0 && state.running.empty()) return;  // no progress possible
      out.push_back(advance(state, chosen));
      if (out.size() > kMaxChildrenPerNode) {
        throw std::runtime_error(
            "solve_optimal_makespan: branching too wide (more than 2^20 start "
            "choices at one decision point); use a smaller cluster or instance");
      }
      return;
    }
    for (const std::uint64_t subset : choices_[alpha]) {
      compose_choices(state, alpha + 1, chosen | subset, out);
    }
  }

  /// Starts `chosen` at state.now, then advances to the next completion
  /// event, retiring every task that finishes exactly there.
  [[nodiscard]] SearchState advance(const SearchState& state, std::uint64_t chosen) {
    SearchState child;
    child.completed = state.completed;
    child.running_mask = state.running_mask | chosen;
    child.running = state.running;
    for (TaskId v = 0; v < num_tasks_; ++v) {
      if (((chosen >> v) & 1u) == 0) continue;
      child.running.push_back(RunSlot{v, state.now + dag_.work(v)});
    }
    std::sort(child.running.begin(), child.running.end(),
              [](const RunSlot& a, const RunSlot& b) { return a.task < b.task; });
    Time next = child.running.front().finish;
    for (const RunSlot& slot : child.running) next = std::min(next, slot.finish);
    child.now = next;
    std::vector<RunSlot> still_running;
    still_running.reserve(child.running.size());
    for (const RunSlot& slot : child.running) {
      if (slot.finish == next) {
        child.completed |= std::uint64_t{1} << slot.task;
        child.running_mask &= ~(std::uint64_t{1} << slot.task);
      } else {
        still_running.push_back(slot);
      }
    }
    child.running = std::move(still_running);
    return child;
  }

  const KDag& dag_;
  const Cluster& cluster_;
  const BnbOptions& options_;
  std::span<const Work> tail_below_;
  const std::size_t num_tasks_;
  const std::uint64_t full_mask_;

  Time best_ = 0;
  bool have_best_ = false;
  bool best_is_incumbent_ = false;
  bool exhausted_ = false;

  std::unordered_map<DomKey, std::vector<DomEntry>, DomKeyHash> seen_;

  // Scratch reused across nodes (one Solver is single-threaded).
  std::vector<Time> path_finish_;
  std::vector<Time> slot_finish_;
  std::vector<Work> remaining_;
  std::vector<std::vector<TaskId>> ready_;
  std::vector<std::vector<std::uint64_t>> choices_;
};

void merge_stats(BnbStats& into, const BnbStats& from) {
  into.nodes_expanded += from.nodes_expanded;
  into.children_generated += from.children_generated;
  into.pruned_bound += from.pruned_bound;
  into.pruned_incumbent += from.pruned_incumbent;
  into.pruned_dominance += from.pruned_dominance;
}

}  // namespace

BnbResult solve_optimal_makespan(const KDag& dag, const Cluster& cluster,
                                 const BnbOptions& options) {
  const std::size_t num_tasks = dag.task_count();
  if (num_tasks == 0 || num_tasks > kBnbMaxTasks) {
    throw std::invalid_argument("solve_optimal_makespan: " +
                                std::to_string(num_tasks) + " tasks; the exact " +
                                "solver handles 1.." + std::to_string(kBnbMaxTasks));
  }
  if (dag.num_types() > cluster.num_types()) {
    throw std::invalid_argument(
        "solve_optimal_makespan: job uses more types than the cluster provides");
  }

  BnbResult result;
  result.lower_bound = completion_time_lower_bound(dag, cluster);
  result.incumbent =
      options.initial_incumbent > 0
          ? options.initial_incumbent
          : schedule_makespan(dag, cluster, SchedulerSpec(PolicyKind::kMqb));

  // L(J) <= OPT <= incumbent: equality proves optimality with zero search.
  if (options.prune_incumbent && options.prune_bound &&
      result.incumbent == result.lower_bound) {
    result.optimum = result.incumbent;
    result.proven = true;
    return result;
  }

  // Longest chain strictly below each task (precedence-bound tail).
  std::vector<Work> tail_below(num_tasks, 0);
  const auto topo = dag.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId v = *it;
    for (const TaskId child : dag.children(v)) {
      tail_below[v] = std::max(tail_below[v], dag.work(child) + tail_below[child]);
    }
  }

  // Phase 1 -- sequential breadth-first split into independent
  // subproblems.  The split depends on frontier_target only, never on
  // the thread count, so results are reproducible at any parallelism.
  Solver splitter(dag, cluster, options, tail_below);
  splitter.seed(result.incumbent, options.prune_incumbent, true);
  std::deque<SearchState> queue;
  queue.emplace_back();
  const std::size_t target = std::max<std::size_t>(1, options.frontier_target);
  while (!queue.empty() && queue.size() < target && !splitter.exhausted()) {
    const SearchState state = std::move(queue.front());
    queue.pop_front();
    for (SearchState& child : splitter.expand(state)) {
      queue.push_back(std::move(child));
    }
  }
  std::vector<SearchState> frontier(std::make_move_iterator(queue.begin()),
                                    std::make_move_iterator(queue.end()));
  result.stats = splitter.stats;
  result.stats.subproblems = frontier.size();

  // Phase 2 -- solve each subproblem independently (own dominance table,
  // own incumbent stream seeded from the split phase; nothing is shared
  // across workers), results folded in frontier order.
  struct SubOutcome {
    Time best = 0;
    bool have = false;
    bool exhausted = false;
    BnbStats stats;
  };
  std::vector<SubOutcome> outcomes(frontier.size());
  parallel_for_chunked(
      frontier.size(), 1,
      [&](std::size_t i) {
        Solver sub(dag, cluster, options, tail_below);
        sub.seed(splitter.best(), splitter.has_best(), splitter.best_is_incumbent());
        sub.search(frontier[i]);
        outcomes[i] =
            SubOutcome{sub.best(), sub.has_best(), sub.exhausted(), sub.stats};
      },
      options.threads);

  Time best = splitter.best();
  bool have = splitter.has_best();
  bool exhausted = splitter.exhausted();
  for (const SubOutcome& outcome : outcomes) {
    merge_stats(result.stats, outcome.stats);
    if (outcome.have && (!have || outcome.best < best)) {
      best = outcome.best;
      have = true;
    }
    exhausted = exhausted || outcome.exhausted;
  }
  result.optimum = have ? best : result.incumbent;
  result.proven = !exhausted;
  return result;
}

}  // namespace fhs
