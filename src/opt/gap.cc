#include "opt/gap.hh"

#include <memory>
#include <ostream>
#include <stdexcept>
#include <string>

#include "exp/json.hh"
#include "sim/engine.hh"
#include "support/rng.hh"
#include "support/table.hh"

namespace fhs {

GapResult run_gap_study(const GapSpec& spec) {
  if (spec.schedulers.empty()) {
    throw std::invalid_argument("run_gap_study: no schedulers");
  }
  if (spec.instances == 0) {
    throw std::invalid_argument("run_gap_study: no instances");
  }
  GapResult result;
  result.spec = spec;
  result.policies.resize(spec.schedulers.size());
  for (std::size_t s = 0; s < spec.schedulers.size(); ++s) {
    result.policies[s].scheduler = spec.schedulers[s].to_string();
  }
  result.per_instance.reserve(spec.instances);

  BnbOptions bnb = spec.bnb;
  bnb.threads = spec.threads;

  for (std::size_t i = 0; i < spec.instances; ++i) {
    // Same derivation as exp/sweep: one stream for the (job, cluster)
    // draw, one per scheduler -- adding or reordering policies never
    // perturbs the instances.
    Rng rng(mix_seed(spec.seed, i));
    const KDag dag = generate(spec.workload, rng);
    const Cluster cluster = spec.cluster.sample(rng);
    if (dag.task_count() > kBnbMaxTasks) {
      throw std::invalid_argument(
          "run_gap_study: instance " + std::to_string(i) + " drew " +
          std::to_string(dag.task_count()) + " tasks; cap the workload (e.g. "
          "TreeParams.max_tasks) at " + std::to_string(kBnbMaxTasks));
    }

    const BnbResult exact = solve_optimal_makespan(dag, cluster, bnb);
    result.per_instance.push_back(InstanceOptimum{dag.task_count(), exact});
    if (exact.proven) ++result.proven;
    result.bound_gap.add(static_cast<double>(exact.optimum) /
                         static_cast<double>(exact.lower_bound));
    result.nodes.add(static_cast<double>(exact.stats.nodes_expanded));

    for (std::size_t s = 0; s < spec.schedulers.size(); ++s) {
      const std::unique_ptr<Scheduler> scheduler =
          spec.schedulers[s].instantiate(mix_seed(spec.seed, i, s + 1));
      const SimResult run = simulate(dag, cluster, *scheduler);
      PolicyGap& gap = result.policies[s];
      gap.ratio_to_opt.add(static_cast<double>(run.completion_time) /
                           static_cast<double>(exact.optimum));
      gap.ratio_to_bound.add(static_cast<double>(run.completion_time) /
                             static_cast<double>(exact.lower_bound));
      if (run.completion_time == exact.optimum) ++gap.optimal_hits;
    }
  }
  return result;
}

void print_gap_table(std::ostream& out, const GapResult& result) {
  const GapSpec& spec = result.spec;
  out << "gap study: " << spec.name << "  workload=" << workload_name(spec.workload)
      << "  cluster=" << spec.cluster.describe() << "  instances=" << spec.instances
      << "  seed=" << spec.seed << '\n';
  out << "exact: proven " << result.proven << "/" << spec.instances
      << "  bound gap OPT/L mean=" << format_double(result.bound_gap.mean())
      << " max=" << format_double(result.bound_gap.max())
      << "  nodes/instance mean=" << format_double(result.nodes.mean(), 0) << '\n';
  Table table({"scheduler", "T/OPT", "ci95", "max", "T/L", "optimal"});
  for (const PolicyGap& gap : result.policies) {
    table.begin_row()
        .add_cell(gap.scheduler)
        .add_cell(gap.ratio_to_opt.mean())
        .add_cell(gap.ratio_to_opt.ci95())
        .add_cell(gap.ratio_to_opt.max())
        .add_cell(gap.ratio_to_bound.mean())
        .add_cell(std::to_string(gap.optimal_hits) + "/" +
                  std::to_string(spec.instances));
  }
  table.print(out);
}

void write_json(std::ostream& out, const GapResult& result) {
  const GapSpec& spec = result.spec;
  out << "{\n  \"name\": " << json_quote(spec.name)
      << ",\n  \"workload\": " << json_quote(workload_name(spec.workload))
      << ",\n  \"cluster\": " << json_quote(spec.cluster.describe())
      << ",\n  \"instances\": " << spec.instances << ",\n  \"seed\": " << spec.seed
      << ",\n  \"proven\": " << result.proven << ",\n  \"bound_gap\": ";
  write_json(out, result.bound_gap);
  out << ",\n  \"nodes\": ";
  write_json(out, result.nodes);
  out << ",\n  \"optima\": [";
  for (std::size_t i = 0; i < result.per_instance.size(); ++i) {
    const InstanceOptimum& inst = result.per_instance[i];
    out << (i ? ",\n    {" : "\n    {") << "\"tasks\": " << inst.tasks
        << ", \"optimum\": " << inst.exact.optimum
        << ", \"lower_bound\": " << inst.exact.lower_bound
        << ", \"incumbent\": " << inst.exact.incumbent
        << ", \"proven\": " << (inst.exact.proven ? "true" : "false")
        << ", \"nodes\": " << inst.exact.stats.nodes_expanded << '}';
  }
  out << "\n  ],\n  \"schedulers\": [";
  for (std::size_t s = 0; s < result.policies.size(); ++s) {
    const PolicyGap& gap = result.policies[s];
    out << (s ? ",\n    {" : "\n    {") << "\"name\": " << json_quote(gap.scheduler)
        << ", \"ratio_to_opt\": ";
    write_json(out, gap.ratio_to_opt);
    out << ", \"ratio_to_bound\": ";
    write_json(out, gap.ratio_to_bound);
    out << ", \"optimal_hits\": " << gap.optimal_hits << '}';
  }
  out << "\n  ]\n}\n";
}

}  // namespace fhs
