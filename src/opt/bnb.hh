// Exact offline solver: parallel branch-and-bound over K-DAG schedules.
//
// Every ratio the experiment harness reports is measured against the
// paper's lower bound L(J) = max(T_inf(J), max_alpha T1(J,alpha)/P_alpha),
// which is loose on trees -- all policies cluster a few percent apart and
// the gap cannot be attributed to the policies or to the bound.  This
// module computes the *exact* non-preemptive optimal makespan for small
// instances, so the harness can decompose T(J)/L(J) into a true policy
// gap T(J)/OPT(J) and a bound gap OPT(J)/L(J).
//
// Search-space encoding.  In any feasible non-preemptive schedule every
// task can be shifted left until its start hits time 0, a parent's
// completion, or the instant a matching processor is released -- all of
// which are completion times.  Some optimal schedule therefore starts
// every task at 0 or at a task-completion event, and the solver branches
// exactly over those schedules: a node is a decision point (event time,
// completed set, running set with finish times); its children are the
// per-type subsets of ready tasks that start there (bounded by free
// processors), *including deliberate idling* -- unlike every registered
// policy, the optimum is not always work-conserving.  After a choice the
// node advances to the next completion.  Subsets are enumerated largest
// first so greedy-like schedules (good incumbents) are found early.
//
// Pruning (each independently switchable, for soundness property tests):
//  * bound     -- a per-node lower bound: the machine bound
//                 now + ceil(remaining alpha-work / P_alpha) per type
//                 (running tasks count their unfinished part) and the
//                 precedence bound (earliest-finish forward pass plus the
//                 longest chain below each task).  Nodes whose bound
//                 cannot beat the best known makespan are cut.
//  * incumbent -- the search starts from a feasible MQB schedule
//                 (sched/registry schedule_makespan), so the bound prunes
//                 from node one; when the incumbent already equals L(J)
//                 the search is skipped entirely (proven optimal).
//  * dominance -- two nodes with the same completed and running sets
//                 compare by (now, per-task finish times); a node
//                 pointwise >= an already-visited one is cut.
//
// Parallelization & determinism contract.  The root is expanded
// breadth-first (sequentially) into a frontier of independent
// subproblems, which are sharded over the same worker pool the sweep
// engine uses (support/parallel parallel_for_chunked).  Each subproblem
// owns its dominance table and incumbent stream (seeded from the
// sequential phase; never shared across workers), and per-subproblem
// results land in preallocated slots folded in frontier order -- the
// same discipline as exp/sweep.  BnbResult (optimum, proven flag, and
// every BnbStats counter) is therefore byte-identical at any thread
// count; frontier_target, not the worker count, decides the split.
#pragma once

#include <cstddef>
#include <cstdint>

#include "graph/kdag.hh"
#include "machine/cluster.hh"

namespace fhs {

/// Hard cap on solvable instance size (completion sets are 64-bit masks;
/// the intended regime is ~20-30 tasks).
inline constexpr std::size_t kBnbMaxTasks = 32;

struct BnbOptions {
  /// Worker threads for the subproblem phase (0 = hardware concurrency).
  /// Results never depend on this value.
  std::size_t threads = 0;
  /// Subproblems the root is split into before going parallel.  This --
  /// not the thread count -- fixes the work decomposition, so results
  /// are reproducible; change it only deliberately.
  std::size_t frontier_target = 64;
  /// Node budget per subproblem (and for the sequential split phase).
  /// When exhausted the result degrades to proven == false with the best
  /// makespan found so far.
  std::uint64_t max_nodes = 20'000'000;
  /// Warm-start makespan (a feasible schedule's completion time).  0
  /// means "derive one by running MQB".
  Time initial_incumbent = 0;
  /// Pruning switches.  Disabling any rule never changes `optimum`,
  /// only the node counts (tests/bnb_property_test.cc).
  bool prune_bound = true;
  bool prune_dominance = true;
  bool prune_incumbent = true;
};

struct BnbStats {
  /// Decision points visited (includes the sequential split phase).
  std::uint64_t nodes_expanded = 0;
  /// Children generated across all expansions.
  std::uint64_t children_generated = 0;
  /// Nodes cut by the lower bound against an *improved* best makespan.
  std::uint64_t pruned_bound = 0;
  /// Nodes cut by the lower bound against the still-unimproved warm
  /// incumbent (what the MQB warm start alone buys).
  std::uint64_t pruned_incumbent = 0;
  /// Nodes cut by state dominance.
  std::uint64_t pruned_dominance = 0;
  /// Subproblems the frontier split produced (0 = answered during the
  /// split or by the incumbent == L(J) shortcut).
  std::uint64_t subproblems = 0;

  friend bool operator==(const BnbStats&, const BnbStats&) = default;
};

struct BnbResult {
  /// Best makespan found; the exact optimum when `proven`.
  Time optimum = 0;
  /// True iff the search space was exhausted within the node budget.
  bool proven = false;
  /// The warm-start (MQB) makespan the search began from.
  Time incumbent = 0;
  /// The paper's root lower bound L(J) (metrics/bounds).
  Time lower_bound = 0;
  BnbStats stats;

  friend bool operator==(const BnbResult&, const BnbResult&) = default;
};

/// Computes the exact optimal non-preemptive makespan of `dag` on
/// `cluster`.  Throws std::invalid_argument when the job has more than
/// kBnbMaxTasks tasks or uses more types than the cluster provides.
[[nodiscard]] BnbResult solve_optimal_makespan(const KDag& dag, const Cluster& cluster,
                                               const BnbOptions& options = {});

}  // namespace fhs
