// Deterministic fault plans (cluster-dynamics extension).
//
// The paper's machine model (§II) is static: P_alpha processors of each
// type, forever healthy.  Real heterogeneous clusters lose and recover
// accelerators mid-run, so a FaultPlan scripts per-processor capacity
// events against the simulator's virtual clock:
//
//   fail     the processor leaves the pool; a task running on it is
//            killed and all its completed work discarded (re-execution
//            model -- the task re-enters its ready queue from scratch);
//   recover  the processor rejoins the pool at full speed (also ends a
//            slowdown);
//   slow xM  the processor keeps running but at rate 1/M: each unit of
//            work takes M ticks (thermal throttling, a noisy neighbour).
//
// A plan is a *value*: a validated, time-sorted event list, parseable
// from a compact spec string exactly like schedulers are via
// SchedulerSpec.  Grammar (case-insensitive, ';'-separated events):
//
//   plan   := event (';' event)*          | ""  (empty plan, no faults)
//   event  := 'p' PROC ':' action '@' TIME
//   action := 'fail' | 'recover' | 'slow' 'x' FACTOR
//
//   e.g.  "p3:fail@100;p3:recover@250;p0:slowx2@40;p0:recover@90"
//
// PROC is a global processor id (see Cluster::offset), TIME a virtual
// tick >= 0, FACTOR an integer >= 2.  Validation enforces a sane
// per-processor state machine (no fail while failed, no recover while
// healthy at full speed, no slow while failed, at most one event per
// (processor, time)), so engines never face an ambiguous plan.  The
// canonical form orders events by (time, processor):
//
//   parse(to_string(plan)) == plan          for every valid plan
//
// Everything here is deterministic by construction: same plan + same
// seed => identical traces at any thread count (fhs_lint rules apply to
// this module).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/kdag.hh"
#include "machine/cluster.hh"

namespace fhs {

enum class FaultKind : std::uint8_t { kFail, kRecover, kSlow };

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

struct FaultEvent {
  Time at = 0;
  std::uint32_t processor = 0;  ///< global processor id
  FaultKind kind = FaultKind::kFail;
  std::uint32_t factor = 1;  ///< kSlow only: ticks per unit of work (>= 2)

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Thrown by FaultPlan::parse and FaultPlan's event validation.  `token`
/// is the offending spec fragment (or a description of the bad event).
class FaultPlanError : public std::invalid_argument {
 public:
  FaultPlanError(const std::string& context, std::string token);

  [[nodiscard]] const std::string& token() const noexcept { return token_; }

 private:
  std::string token_;
};

class FaultPlan {
 public:
  /// The empty plan: no faults, engines behave exactly as without one.
  FaultPlan() = default;

  /// Validates and canonically sorts `events`; throws FaultPlanError on
  /// negative times, bad factors, or an inconsistent per-processor state
  /// machine.
  explicit FaultPlan(std::vector<FaultEvent> events);

  /// Parses the spec grammar above; "" yields the empty plan.
  [[nodiscard]] static FaultPlan parse(const std::string& text);

  /// Canonical spec string (events sorted by (time, processor));
  /// parse(to_string()) round-trips.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::span<const FaultEvent> events() const noexcept { return events_; }

  /// Largest processor id named by any event (0 when empty).
  [[nodiscard]] std::uint32_t max_processor() const noexcept;

  /// Throws std::invalid_argument when the plan names a processor the
  /// cluster does not have -- the release-build guard between user-
  /// supplied fault specs and the engines' free-list bookkeeping.
  void validate_against(const Cluster& cluster) const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

 private:
  std::vector<FaultEvent> events_;  // sorted by (at, processor)
};

}  // namespace fhs
