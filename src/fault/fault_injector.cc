#include "fault/fault_injector.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace fhs {

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint32_t total_processors)
    : events_(plan.events().begin(), plan.events().end()),
      down_(total_processors, 0),
      factor_(total_processors, 1),
      down_since_(total_processors, VirtualTime{-1}) {
  if (!plan.empty() && plan.max_processor() >= total_processors) {
    throw std::invalid_argument("FaultInjector: plan names processor p" +
                                std::to_string(plan.max_processor()) +
                                " but the pool has only " +
                                std::to_string(total_processors) + " processors");
  }
}

Time FaultInjector::next_event_time() const noexcept {
  return cursor_ < events_.size() ? events_[cursor_].at : kNoFaultEvent;
}

std::span<const FaultEvent> FaultInjector::take_events_until(Time now) {
  const std::size_t begin = cursor_;
  while (cursor_ < events_.size() && events_[cursor_].at <= now) {
    const FaultEvent& event = events_[cursor_];
    switch (event.kind) {
      case FaultKind::kFail:
        down_[event.processor] = 1;
        down_since_[event.processor] = VirtualTime{event.at};
        break;
      case FaultKind::kRecover:
        down_[event.processor] = 0;
        factor_[event.processor] = 1;
        break;
      case FaultKind::kSlow:
        factor_[event.processor] = event.factor;
        break;
    }
    ++cursor_;
  }
  return {events_.data() + begin, cursor_ - begin};
}

bool FaultInjector::will_recover(std::uint32_t proc) const {
  for (std::size_t i = cursor_; i < events_.size(); ++i) {
    if (events_[i].processor == proc && events_[i].kind == FaultKind::kRecover) {
      return true;
    }
  }
  return false;
}

// --- FaultTimeline ----------------------------------------------------------------

FaultTimeline::FaultTimeline(const FaultPlan& plan, std::uint32_t total_processors)
    : timeline_(total_processors) {
  for (const FaultEvent& event : plan.events()) {
    if (event.processor >= total_processors) continue;  // caller validates
    std::uint32_t factor = 1;
    if (event.kind == FaultKind::kFail) factor = 0;
    if (event.kind == FaultKind::kSlow) factor = event.factor;
    timeline_[event.processor].push_back(Breakpoint{VirtualTime{event.at}, factor});
  }
  // Plan events are already (time, processor)-sorted, so each
  // per-processor subsequence is time-sorted too.
}

bool FaultTimeline::down_overlaps(std::uint32_t proc, Time begin, Time end) const {
  std::uint32_t state = 1;
  VirtualTime since{0};
  for (const Breakpoint& bp : timeline_.at(proc)) {
    if (state == 0 && since < VirtualTime{end} && bp.at > VirtualTime{begin}) {
      return true;
    }
    state = bp.factor;
    since = bp.at;
  }
  return state == 0 && since < VirtualTime{end};
}

bool FaultTimeline::fails_at(std::uint32_t proc, Time at) const {
  std::uint32_t state = 1;
  for (const Breakpoint& bp : timeline_.at(proc)) {
    if (bp.factor == 0 && state != 0 && bp.at == VirtualTime{at}) return true;
    state = bp.factor;
  }
  return false;
}

std::uint32_t FaultTimeline::max_factor_in(std::uint32_t proc, Time begin,
                                           Time end) const {
  std::uint32_t best = 1;
  std::uint32_t state = 1;
  VirtualTime since{0};
  for (const Breakpoint& bp : timeline_.at(proc)) {
    // `state` holds over [since, bp.at).
    if (state > 1 && since < VirtualTime{end} && bp.at > VirtualTime{begin}) {
      best = std::max(best, state);
    }
    state = bp.factor;
    since = bp.at;
  }
  // `state` holds over [since, infinity).
  if (state > 1 && since < VirtualTime{end}) best = std::max(best, state);
  return best;
}

std::size_t FaultTimeline::rate_changes_in(std::uint32_t proc, Time begin,
                                           Time end) const {
  std::size_t changes = 0;
  for (const Breakpoint& bp : timeline_.at(proc)) {
    if (bp.at > VirtualTime{begin} && bp.at < VirtualTime{end}) ++changes;
  }
  return changes;
}

}  // namespace fhs
