#include "fault/fault_plan.hh"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <tuple>

namespace fhs {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kFail:
      return "fail";
    case FaultKind::kRecover:
      return "recover";
    case FaultKind::kSlow:
      return "slow";
  }
  return "?";
}

FaultPlanError::FaultPlanError(const std::string& context, std::string token)
    : std::invalid_argument(context + ": '" + token + "'"), token_(std::move(token)) {}

namespace {

/// Per-processor validation: the event sequence must describe a runnable
/// state machine (up -> fail -> down -> recover -> up; slow only while
/// up; recover also clears a slowdown).
void validate_sequence(std::vector<FaultEvent>& events) {
  for (const FaultEvent& event : events) {
    if (event.at < 0) {
      throw FaultPlanError("FaultPlan: event time must be >= 0",
                           std::to_string(event.at));
    }
    if (event.kind == FaultKind::kSlow && event.factor < 2) {
      throw FaultPlanError("FaultPlan: slow factor must be >= 2",
                           std::to_string(event.factor));
    }
    if (event.kind != FaultKind::kSlow && event.factor != 1) {
      throw FaultPlanError("FaultPlan: only slow events carry a factor",
                           std::to_string(event.factor));
    }
  }
  // Canonical order: by time, ties by processor.  Per-(processor, time)
  // uniqueness makes this a total order, so two equal plans always
  // serialize identically.
  std::sort(events.begin(), events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return std::tie(a.at, a.processor) < std::tie(b.at, b.processor);
            });
  // Walk each processor's subsequence.  State: 0 = up (full speed),
  // 1 = slowed, 2 = down.
  std::vector<std::uint32_t> procs;
  procs.reserve(events.size());
  for (const FaultEvent& event : events) procs.push_back(event.processor);
  std::sort(procs.begin(), procs.end());
  procs.erase(std::unique(procs.begin(), procs.end()), procs.end());
  for (const std::uint32_t proc : procs) {
    int state = 0;
    Time last_at = -1;
    for (const FaultEvent& event : events) {
      if (event.processor != proc) continue;
      std::string where = "p";
      where += std::to_string(proc);
      where += '@';
      where += std::to_string(event.at);
      if (event.at == last_at) {
        throw FaultPlanError("FaultPlan: two events for one processor at one time",
                             where);
      }
      last_at = event.at;
      switch (event.kind) {
        case FaultKind::kFail:
          if (state == 2) {
            throw FaultPlanError("FaultPlan: fail on an already-failed processor",
                                 where);
          }
          state = 2;
          break;
        case FaultKind::kRecover:
          if (state == 0) {
            throw FaultPlanError(
                "FaultPlan: recover on a healthy full-speed processor", where);
          }
          state = 0;
          break;
        case FaultKind::kSlow:
          if (state == 2) {
            throw FaultPlanError("FaultPlan: slow on a failed processor", where);
          }
          state = 1;  // re-slowing an already-slowed processor changes the factor
          break;
      }
    }
  }
}

/// Parses a non-negative integer at text[pos...]; advances pos.
std::uint64_t parse_uint(const std::string& text, std::size_t& pos,
                         const std::string& what) {
  const std::size_t begin = pos;
  while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  if (pos == begin || pos - begin > 18) {
    throw FaultPlanError("FaultPlan: expected " + what,
                         text.substr(begin, std::max<std::size_t>(1, pos - begin)));
  }
  return std::stoull(text.substr(begin, pos - begin));
}

FaultEvent parse_event(const std::string& token) {
  // Case-insensitive, whitespace-tolerant: normalize first.
  std::string text;
  text.reserve(token.size());
  for (const char c : token) {
    if (!std::isspace(static_cast<unsigned char>(c))) {
      text.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  FaultEvent event;
  std::size_t pos = 0;
  if (pos >= text.size() || text[pos] != 'p') {
    throw FaultPlanError("FaultPlan: event must start with 'p<proc>'", token);
  }
  ++pos;
  event.processor = static_cast<std::uint32_t>(parse_uint(text, pos, "processor id"));
  if (pos >= text.size() || text[pos] != ':') {
    throw FaultPlanError("FaultPlan: expected ':' after processor id", token);
  }
  ++pos;
  const std::size_t at_sign = text.find('@', pos);
  if (at_sign == std::string::npos) {
    throw FaultPlanError("FaultPlan: expected '@<time>'", token);
  }
  const std::string action = text.substr(pos, at_sign - pos);
  if (action == "fail") {
    event.kind = FaultKind::kFail;
  } else if (action == "recover") {
    event.kind = FaultKind::kRecover;
  } else if (action.rfind("slowx", 0) == 0) {
    event.kind = FaultKind::kSlow;
    std::size_t fpos = pos + 5;
    event.factor = static_cast<std::uint32_t>(parse_uint(text, fpos, "slow factor"));
    if (fpos != at_sign) {
      throw FaultPlanError("FaultPlan: trailing characters after slow factor", token);
    }
  } else {
    throw FaultPlanError("FaultPlan: unknown action (fail | recover | slowx<M>)",
                         token);
  }
  pos = at_sign + 1;
  event.at = static_cast<Time>(parse_uint(text, pos, "event time"));
  if (pos != text.size()) {
    throw FaultPlanError("FaultPlan: trailing characters after event time", token);
  }
  return event;
}

}  // namespace

FaultPlan::FaultPlan(std::vector<FaultEvent> events) : events_(std::move(events)) {
  validate_sequence(events_);
}

FaultPlan FaultPlan::parse(const std::string& text) {
  std::vector<FaultEvent> events;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(';', begin);
    if (end == std::string::npos) end = text.size();
    const std::string token = text.substr(begin, end - begin);
    const bool blank =
        std::all_of(token.begin(), token.end(),
                    [](unsigned char c) { return std::isspace(c) != 0; });
    if (!blank) events.push_back(parse_event(token));
    if (end == text.size()) break;
    begin = end + 1;
  }
  return FaultPlan(std::move(events));
}

std::string FaultPlan::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) out << ';';
    const FaultEvent& event = events_[i];
    out << 'p' << event.processor << ':' << fhs::to_string(event.kind);
    if (event.kind == FaultKind::kSlow) out << 'x' << event.factor;
    out << '@' << event.at;
  }
  return out.str();
}

std::uint32_t FaultPlan::max_processor() const noexcept {
  std::uint32_t best = 0;
  for (const FaultEvent& event : events_) best = std::max(best, event.processor);
  return best;
}

void FaultPlan::validate_against(const Cluster& cluster) const {
  if (empty()) return;
  if (max_processor() >= cluster.total_processors()) {
    throw std::invalid_argument(
        "FaultPlan: event names processor p" + std::to_string(max_processor()) +
        " but the cluster has only " + std::to_string(cluster.total_processors()) +
        " processors (" + cluster.describe() + ")");
  }
}

}  // namespace fhs
