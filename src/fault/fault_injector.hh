// Runtime companions of a FaultPlan.
//
// FaultInjector is the *engine-side* cursor: as virtual time advances it
// hands the engine every event that just became due and tracks the live
// per-processor state (down? at what rate? down since when?).  Both the
// single-job engine (sim/engine) and the stream engine (multijob) drive
// one; the free-list surgery itself stays in the engines because only
// they know who is running where.
//
// FaultTimeline is the *checker-side* view: a pure function of the plan
// that answers interval queries (was p down anywhere in [s, e)? what was
// the max slowdown factor?) without replaying engine state, so the
// schedule checker's fault invariants stay independent of engine code.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "fault/fault_plan.hh"

namespace fhs {

inline constexpr Time kNoFaultEvent = std::numeric_limits<Time>::max();

/// Tallies of what a fault plan did to one run; embedded in SimResult /
/// MultiJobResult and mirrored into obs counters by the engines.
struct FaultStats {
  std::uint64_t failures = 0;     ///< fail events applied
  std::uint64_t recoveries = 0;   ///< recover events applied to a down processor
  std::uint64_t slowdowns = 0;    ///< slow events applied
  std::uint64_t tasks_killed = 0;  ///< running tasks killed by a failure or cancel
  /// Completed-but-discarded work units (the rework the failures cost).
  Work work_discarded = 0;

  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, std::uint32_t total_processors);

  /// Time of the first unconsumed event (kNoFaultEvent when exhausted).
  [[nodiscard]] Time next_event_time() const noexcept;

  /// Consumes and returns every event with at <= now, updating the live
  /// per-processor state.  The returned span is valid until the next
  /// call.  Engines react (kill tasks, edit free lists) per event.
  [[nodiscard]] std::span<const FaultEvent> take_events_until(Time now);

  [[nodiscard]] bool is_down(std::uint32_t proc) const { return down_.at(proc) != 0; }
  /// Ticks per unit of work on this processor (1 = full speed).
  [[nodiscard]] std::uint32_t factor(std::uint32_t proc) const {
    return factor_.at(proc);
  }
  /// Time of the fail event that downed this processor (engines use it
  /// for the recovery-latency histogram).
  [[nodiscard]] Time down_since(std::uint32_t proc) const {
    return down_since_.at(proc).raw();
  }

  /// True when an unconsumed recover event exists for `proc` -- the
  /// difference between "wait for recovery" and "stalled forever".
  [[nodiscard]] bool will_recover(std::uint32_t proc) const;

 private:
  std::vector<FaultEvent> events_;  // canonical order, from the plan
  std::size_t cursor_ = 0;
  std::vector<std::uint8_t> down_;
  std::vector<std::uint32_t> factor_;
  std::vector<VirtualTime> down_since_;
};

/// Checker-side interval queries over a plan (no engine state).
class FaultTimeline {
 public:
  FaultTimeline(const FaultPlan& plan, std::uint32_t total_processors);

  /// True when processor `proc` is down anywhere in [begin, end).
  [[nodiscard]] bool down_overlaps(std::uint32_t proc, Time begin, Time end) const;

  /// True when some fail event of `proc` is at exactly `at` (a killed
  /// segment must end at the failure instant).
  [[nodiscard]] bool fails_at(std::uint32_t proc, Time at) const;

  /// Max slowdown factor of `proc` over [begin, end) (1 = full speed
  /// throughout).
  [[nodiscard]] std::uint32_t max_factor_in(std::uint32_t proc, Time begin,
                                            Time end) const;

  /// Number of rate changes of `proc` strictly inside (begin, end).
  [[nodiscard]] std::size_t rate_changes_in(std::uint32_t proc, Time begin,
                                            Time end) const;

 private:
  /// Per processor: (time, state-after) breakpoints, state 0 = down,
  /// otherwise the factor; starts implicitly at (0, 1).
  struct Breakpoint {
    VirtualTime at{};
    std::uint32_t factor = 1;  // 0 encodes "down"
  };
  std::vector<std::vector<Breakpoint>> timeline_;
};

}  // namespace fhs
