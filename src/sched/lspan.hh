// LSpan -- longest remaining span first (paper §IV-B).
//
// Classical critical-path heuristic lifted unchanged from homogeneous
// scheduling: an alpha-processor picks the ready alpha-task with the
// longest remaining span (its remaining work plus the longest span among
// its children).  In preemptive mode the remaining work of a partially
// executed task shrinks its remaining span accordingly.
#pragma once

#include <memory>

#include "graph/analysis.hh"
#include "sched/priority_scheduler.hh"

namespace fhs {

class LSpanScheduler final : public PriorityScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "LSpan"; }
  void prepare(const KDag& dag, const Cluster& cluster) override;

 protected:
  [[nodiscard]] double score(TaskId task, const DispatchContext& ctx) const override;

 private:
  const KDag* dag_ = nullptr;
  std::unique_ptr<JobAnalysis> analysis_;
};

}  // namespace fhs
