#include "sched/info.hh"

#include "support/rng.hh"

namespace fhs {

std::string InfoModel::describe() const {
  std::string text = scope == InfoScope::kAll ? "All" : "1Step";
  switch (fidelity) {
    case InfoFidelity::kPrecise: text += "+Pre"; break;
    case InfoFidelity::kExponential: text += "+Exp"; break;
    case InfoFidelity::kNoisy: text += "+Noise"; break;
  }
  return text;
}

DescendantTable::DescendantTable(const JobAnalysis& analysis, const InfoModel& model)
    : num_types_(analysis.num_types()) {
  const KDag& dag = analysis.dag();
  const std::size_t n = dag.task_count();
  values_.resize(n * num_types_);
  for (TaskId v = 0; v < n; ++v) {
    const auto row = model.scope == InfoScope::kAll
                         ? analysis.descendant_row(v)
                         : analysis.one_step_descendant_row(v);
    std::copy(row.begin(), row.end(),
              values_.begin() + static_cast<std::ptrdiff_t>(
                                    static_cast<std::size_t>(v) * num_types_));
  }
  if (model.fidelity == InfoFidelity::kPrecise) return;

  // Average task work of the job: the additive-noise magnitude (§V-G).
  const double avg_work =
      static_cast<double>(dag.total_work()) / static_cast<double>(n);
  Rng rng(mix_seed(model.noise_seed, 0x6d71626e6f697365ULL));
  for (double& value : values_) {
    if (model.fidelity == InfoFidelity::kExponential) {
      value = rng.exponential(value);
    } else {
      value = value * rng.uniform_real(0.5, 1.5) + rng.uniform_real(0.0, avg_work);
    }
  }
}

}  // namespace fhs
