// MQB -- Multi-Queue Balancing (paper §IV-A), the paper's contribution.
//
// MQB transforms makespan minimization into utilization balancing.  It
// keeps one ready queue per type and defines the x-utilization of the
// alpha-queue as r_alpha = l_alpha / P_alpha, where l_alpha is the total
// (remaining) work of the ready alpha-tasks.  A snapshot A is *better
// balanced* than B when the vectors of x-utilizations sorted ascending
// compare lexicographically greater (the shortest queue -- the likely
// utilization bottleneck -- is raised first).
//
// Dispatch: when at most P_alpha alpha-tasks are ready, run them all.
// When more are ready, MQB scores each candidate t by the balance of the
// hypothetical snapshot in which t's typed descendant values d_beta(t)
// are added to the queues (and, by default, t's own remaining work leaves
// its queue -- see MqbOptions::subtract_self_work); the candidate whose
// snapshot is best balanced runs.  The hypothetical queue state carries
// over from pick to pick until every free processor is assigned.
//
// The descendant information comes from a DescendantTable, so the
// approximate-information variants of §V-G (All/1Step x Pre/Exp/Noise)
// are this same class under a different InfoModel.
#pragma once

#include <memory>
#include <vector>

#include "graph/analysis.hh"
#include "sched/info.hh"
#include "sim/scheduler.hh"

namespace fhs {

/// Which snapshots compare as "better balanced" (ablation bench E8; the
/// paper uses kLexicographic).
enum class BalanceRule : std::uint8_t {
  kLexicographic,  // paper: sorted x-utilization vectors, lexicographic
  kMinOnly,        // only the smallest x-utilization
  kSumOfSquares,   // minimize sum of squared deviation from the mean
};

struct MqbOptions {
  InfoModel info;
  BalanceRule balance_rule = BalanceRule::kLexicographic;
  /// Remove the candidate's own remaining work from its queue when
  /// forming the hypothetical snapshot (it stops being *ready* once it
  /// runs).  Paper §IV-A is silent on this; see DESIGN.md and the
  /// ablation bench.
  bool subtract_self_work = true;

  friend bool operator==(const MqbOptions&, const MqbOptions&) = default;
};

class MqbScheduler final : public Scheduler {
 public:
  explicit MqbScheduler(MqbOptions options = {});

  [[nodiscard]] std::string name() const override;
  void prepare(const KDag& dag, const Cluster& cluster) override;
  void dispatch(DispatchContext& ctx) override;

  [[nodiscard]] const MqbOptions& options() const noexcept { return options_; }

 private:
  /// True if snapshot `a` is better balanced than `b` (both are
  /// per-type hypothetical queue-work vectors).
  [[nodiscard]] bool better_balance(const std::vector<double>& a,
                                    const std::vector<double>& b,
                                    const std::vector<double>& inv_procs) const;

  MqbOptions options_;
  std::unique_ptr<JobAnalysis> analysis_;
  std::unique_ptr<DescendantTable> table_;
  // Scratch buffers reused across dispatches.
  std::vector<double> inv_procs_;
  std::vector<double> hypo_;
  std::vector<double> candidate_;
  std::vector<double> best_snapshot_;
  mutable std::vector<double> sorted_a_;
  mutable std::vector<double> sorted_b_;
};

}  // namespace fhs
