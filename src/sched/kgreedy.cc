#include "sched/kgreedy.hh"

namespace fhs {

KGreedyScheduler::KGreedyScheduler(DispatchOrder order, std::uint64_t seed)
    : order_(order), seed_(seed), rng_(mix_seed(seed, 0x6b677265656479ULL)) {}

std::string KGreedyScheduler::name() const {
  switch (order_) {
    case DispatchOrder::kFifo: return "KGreedy";
    case DispatchOrder::kLifo: return "KGreedy+lifo";
    case DispatchOrder::kRandom: return "KGreedy+random";
  }
  return "KGreedy";
}

void KGreedyScheduler::prepare(const KDag& dag, const Cluster& cluster) {
  // Online: nothing to precompute.  Reset the pick stream so repeated
  // simulations of the same job are reproducible.
  (void)dag;
  (void)cluster;
  rng_.reseed(mix_seed(seed_, 0x6b677265656479ULL));
}

void KGreedyScheduler::dispatch(DispatchContext& ctx) {
  for (ResourceType alpha = 0; alpha < ctx.num_types(); ++alpha) {
    while (ctx.free_processors(alpha) > 0) {
      const auto queue = ctx.ready(alpha);
      if (queue.empty()) break;
      std::size_t pick = 0;
      switch (order_) {
        case DispatchOrder::kFifo: pick = 0; break;
        case DispatchOrder::kLifo: pick = queue.size() - 1; break;
        case DispatchOrder::kRandom:
          pick = static_cast<std::size_t>(rng_.uniform_below(queue.size()));
          break;
      }
      ctx.assign(alpha, pick);
    }
  }
}

}  // namespace fhs
