// ShiftBT -- shifting-bottleneck heuristic adapted to K-DAGs
// (paper §IV-B; Adams, Balas & Zawack 1988 for the original job-shop
// procedure).
//
// Due date of a task: due(v) = T_inf(J) - remaining_span(v), the latest
// start that cannot delay the job.  The procedure then isolates one
// resource type at a time:
//
//   repeat until every type is fixed:
//     for each unfixed type alpha:
//       simulate the job with P_beta infinite for every unfixed beta !=
//       alpha (fixed types keep their real counts), dispatching EDD by
//       the current due dates;
//       L_alpha = max over alpha-tasks of (start(v) - due(v))   [lateness]
//     fix the type k maximizing L_k (the current bottleneck) and replace
//     every task's due date with its start time in k's subproblem
//     schedule (the re-sequencing step of the shifting-bottleneck
//     procedure, collapsed to one pass as in the paper's description).
//
// Final dispatch: earliest due date within each queue.
#pragma once

#include <vector>

#include "sched/priority_scheduler.hh"

namespace fhs {

/// Plain earliest-due-date dispatch with the static due dates
/// due(v) = T_inf(J) - remaining_span(v) -- ShiftBT without the
/// shifting-bottleneck re-sequencing iterations.  Exists to measure what
/// the bottleneck machinery adds (bench/ablation_mqb).
class EddScheduler final : public PriorityScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "EDD"; }
  void prepare(const KDag& dag, const Cluster& cluster) override;

 protected:
  [[nodiscard]] double score(TaskId task, const DispatchContext& ctx) const override;

 private:
  std::vector<Time> due_;
};

class ShiftBtScheduler final : public PriorityScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "ShiftBT"; }
  void prepare(const KDag& dag, const Cluster& cluster) override;

  /// Bottleneck order chosen by the last prepare() (most critical first);
  /// exposed for tests and the ablation bench.
  [[nodiscard]] const std::vector<ResourceType>& bottleneck_order() const noexcept {
    return bottleneck_order_;
  }
  /// Final due dates used for dispatch.
  [[nodiscard]] const std::vector<Time>& final_due_dates() const noexcept {
    return due_;
  }

 protected:
  [[nodiscard]] double score(TaskId task, const DispatchContext& ctx) const override;

 private:
  std::vector<Time> due_;
  std::vector<ResourceType> bottleneck_order_;
};

}  // namespace fhs
