// Base class for per-queue priority policies.
//
// Every heuristic in the paper except MQB reduces to "when an
// alpha-processor frees up, run the ready alpha-task maximizing some
// score".  PriorityScheduler implements the work-conserving dispatch
// loop once; concrete policies provide the score.  Ties break FIFO
// (oldest-ready first), which also makes KGreedy exactly FIFO by scoring
// every task equally.
//
// Scores are computed once per queue per decision point into a reusable
// scratch buffer (score() is pure for the duration of one dispatch, per
// the contract below), then assignments repeatedly take the argmax of
// the cached values -- no rescoring per assignment and no allocation in
// the steady state.
#pragma once

#include <vector>

#include "sim/scheduler.hh"

namespace fhs {

class PriorityScheduler : public Scheduler {
 public:
  void dispatch(DispatchContext& ctx) final;

 protected:
  /// Score of a ready task; higher runs first.  `ctx` gives access to
  /// remaining work for preemption-aware scores.  Must be a pure function
  /// of (task, ctx) for the duration of one dispatch call.
  [[nodiscard]] virtual double score(TaskId task, const DispatchContext& ctx) const = 0;

 private:
  // Scratch reused across dispatches; grows to the largest queue once.
  std::vector<double> scores_;
};

}  // namespace fhs
