// Base class for per-queue priority policies.
//
// Every heuristic in the paper except MQB reduces to "when an
// alpha-processor frees up, run the ready alpha-task maximizing some
// score".  PriorityScheduler implements the work-conserving dispatch
// loop once; concrete policies provide the score.  Ties break FIFO
// (oldest-ready first), which also makes KGreedy exactly FIFO by scoring
// every task equally.
#pragma once

#include "sim/scheduler.hh"

namespace fhs {

class PriorityScheduler : public Scheduler {
 public:
  void dispatch(DispatchContext& ctx) final;

 protected:
  /// Score of a ready task; higher runs first.  `ctx` gives access to
  /// remaining work for preemption-aware scores.  Must be a pure function
  /// of (task, ctx) for the duration of one dispatch call.
  [[nodiscard]] virtual double score(TaskId task, const DispatchContext& ctx) const = 0;
};

}  // namespace fhs
