#include "sched/realtime.hh"

#include "graph/analysis.hh"

namespace fhs {

namespace {

std::vector<Time> finish_deadlines(const KDag& dag) {
  std::vector<Time> deadline = due_dates(dag);
  for (TaskId v = 0; v < dag.task_count(); ++v) {
    deadline[v] += static_cast<Time>(dag.work(v));
  }
  return deadline;
}

}  // namespace

void EdfScheduler::prepare(const KDag& dag, const Cluster& cluster) {
  (void)cluster;
  deadline_ = finish_deadlines(dag);
}

double EdfScheduler::score(TaskId task, const DispatchContext& ctx) const {
  (void)ctx;
  return -static_cast<double>(deadline_[task]);  // earliest deadline first
}

void LlfScheduler::prepare(const KDag& dag, const Cluster& cluster) {
  (void)cluster;
  deadline_ = finish_deadlines(dag);
}

double LlfScheduler::score(TaskId task, const DispatchContext& ctx) const {
  const Time laxity = deadline_[task] - ctx.now() -
                      static_cast<Time>(ctx.remaining_work(task));
  return -static_cast<double>(laxity);  // least laxity first
}

}  // namespace fhs
