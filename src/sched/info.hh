// Approximate offline information models (paper §V-G).
//
// MQB consumes per-task, per-type descendant values.  The paper studies
// how MQB degrades when that information is partial or imprecise:
//
//   scope:    All   -- full recursive descendant values (MQB+All)
//             1Step -- only immediate children (MQB+1Step)
//
//   fidelity: Precise -- true values
//             Exp     -- each value replaced by an exponential random
//                        variable whose mean is the true value
//             Noise   -- true value * U(0.5, 1.5) + U(0, avg task work)
//
// A DescendantTable realizes one (scope, fidelity) combination for one
// job.  Noise is sampled once per (task, type) at construction with a
// caller-provided seed, so a given (job, seed) is reproducible.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/analysis.hh"
#include "graph/kdag.hh"

namespace fhs {

enum class InfoScope : std::uint8_t { kAll, kOneStep };
enum class InfoFidelity : std::uint8_t { kPrecise, kExponential, kNoisy };

struct InfoModel {
  InfoScope scope = InfoScope::kAll;
  InfoFidelity fidelity = InfoFidelity::kPrecise;
  std::uint64_t noise_seed = 0;

  [[nodiscard]] std::string describe() const;

  friend bool operator==(const InfoModel&, const InfoModel&) = default;
};

/// Materialized descendant values under an InfoModel.
class DescendantTable {
 public:
  DescendantTable(const JobAnalysis& analysis, const InfoModel& model);

  [[nodiscard]] double value(TaskId v, ResourceType alpha) const {
    return values_[static_cast<std::size_t>(v) * num_types_ + alpha];
  }
  [[nodiscard]] std::span<const double> row(TaskId v) const {
    return {values_.data() + static_cast<std::size_t>(v) * num_types_, num_types_};
  }
  [[nodiscard]] ResourceType num_types() const noexcept {
    return static_cast<ResourceType>(num_types_);
  }

 private:
  std::size_t num_types_;
  std::vector<double> values_;
};

}  // namespace fhs
