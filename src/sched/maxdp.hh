// MaxDP -- maximum descendants first (paper §IV-B).
//
// Picks the ready task with the largest (untyped) descendant value: a
// task with pr(u) parents contributes 1/pr(u) of its own descendant value
// plus 1/pr(u) of its own work to each parent.  Same recursion as MQB's
// typed values but summed over all types, so MaxDP cannot tell *which*
// resources a task's descendants would feed -- exactly the failure mode
// the paper demonstrates on layered EP workloads.
#pragma once

#include <vector>

#include "sched/priority_scheduler.hh"

namespace fhs {

class MaxDpScheduler final : public PriorityScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "MaxDP"; }
  void prepare(const KDag& dag, const Cluster& cluster) override;

 protected:
  [[nodiscard]] double score(TaskId task, const DispatchContext& ctx) const override;

 private:
  std::vector<double> descendant_;
};

}  // namespace fhs
