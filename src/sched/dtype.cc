#include "sched/dtype.hh"

#include "graph/analysis.hh"

namespace fhs {

void DTypeScheduler::prepare(const KDag& dag, const Cluster& cluster) {
  (void)cluster;
  distance_ = different_child_distance(dag);
}

double DTypeScheduler::score(TaskId task, const DispatchContext& ctx) const {
  (void)ctx;
  const std::size_t d = distance_[task];
  if (d == kNoDifferentDescendant) return -1e18;  // run last
  return -static_cast<double>(d);  // smaller distance => higher score
}

}  // namespace fhs
