#include "sched/priority_scheduler.hh"

namespace fhs {

void PriorityScheduler::dispatch(DispatchContext& ctx) {
  for (ResourceType alpha = 0; alpha < ctx.num_types(); ++alpha) {
    while (ctx.free_processors(alpha) > 0) {
      const auto queue = ctx.ready(alpha);
      if (queue.empty()) break;
      std::size_t best = 0;
      double best_score = score(queue[0], ctx);
      for (std::size_t i = 1; i < queue.size(); ++i) {
        const double s = score(queue[i], ctx);
        if (s > best_score) {  // strict: ties keep the oldest-ready task
          best_score = s;
          best = i;
        }
      }
      ctx.assign(alpha, best);
    }
  }
}

}  // namespace fhs
