#include "sched/priority_scheduler.hh"

namespace fhs {

void PriorityScheduler::dispatch(DispatchContext& ctx) {
  for (ResourceType alpha = 0; alpha < ctx.num_types(); ++alpha) {
    std::uint32_t free = ctx.free_processors(alpha);
    if (free == 0) continue;
    {
      const ReadySpan queue = ctx.ready(alpha);
      scores_.resize(queue.size());
      for (std::size_t i = 0; i < queue.size(); ++i) {
        scores_[i] = score(queue[i], ctx);
      }
    }  // span dies here; assign() below would invalidate it
    // scores_ stays positionally aligned with the engine's queue: the
    // engine erases the assigned index, we erase the matching score.
    while (free > 0 && !scores_.empty()) {
      std::size_t best = 0;
      for (std::size_t i = 1; i < scores_.size(); ++i) {
        if (scores_[i] > scores_[best]) {  // strict: ties keep the oldest
          best = i;
        }
      }
      ctx.assign(alpha, best);
      scores_.erase(scores_.begin() + static_cast<std::ptrdiff_t>(best));
      --free;
    }
  }
}

}  // namespace fhs
