// Typed scheduler specification -- the parsed form of the registry's
// string grammar.
//
// A SchedulerSpec is a value: a policy kind plus the options that policy
// accepts (DispatchOrder for KGreedy, MqbOptions for MQB).  It replaces
// stringly-typed policy construction everywhere a policy selection is
// stored, compared, or shipped across an API boundary; the string form
// survives only at the edges (command-line flags, JSON), where parse()
// and to_string() convert losslessly:
//
//   parse(to_string(spec)) == spec            for every spec
//   to_string(parse(text)) is canonical       (lowercase, defaults omitted)
//
// Grammar (case-insensitive, '+'-separated tokens):
//
//   kgreedy[+fifo|+lifo|+random]
//   lspan | maxdp | dtype | shiftbt | edd | edf | llf
//   mqb[+all|+1step][+pre|+exp|+noise][+minonly|+sumsq][+noself]
//
// Parse errors are SchedulerSpecError, which carries the offending token
// and the list of names that would have been valid in its place, so
// tools can print "unknown scheduler 'X'; valid: ..." without string
// surgery on what().
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sched/kgreedy.hh"
#include "sched/mqb.hh"
#include "sim/scheduler.hh"

namespace fhs {

enum class PolicyKind : std::uint8_t {
  kKGreedy,
  kLSpan,
  kMaxDp,
  kDType,
  kShiftBt,
  kEdd,
  kEdf,
  kLlf,
  kMqb,
};

/// Thrown by SchedulerSpec::parse.  `token` is the text that failed to
/// parse; `valid_names` lists what would have been accepted in its place.
class SchedulerSpecError : public std::invalid_argument {
 public:
  SchedulerSpecError(const std::string& context, std::string token,
                     std::vector<std::string> valid_names);

  [[nodiscard]] const std::string& token() const noexcept { return token_; }
  [[nodiscard]] const std::vector<std::string>& valid_names() const noexcept {
    return valid_names_;
  }

 private:
  std::string token_;
  std::vector<std::string> valid_names_;
};

struct SchedulerSpec {
  PolicyKind policy = PolicyKind::kKGreedy;
  /// KGreedy pick order; ignored by every other policy.
  DispatchOrder order = DispatchOrder::kFifo;
  /// MQB options; ignored by every other policy.  `mqb.info.noise_seed`
  /// is *not* part of the spec: instantiate() injects its seed argument.
  MqbOptions mqb;

  SchedulerSpec() = default;
  explicit SchedulerSpec(PolicyKind kind) : policy(kind) {}
  /// Implicit from the string grammar, so call sites migrating from the
  /// string API ({"kgreedy", "mqb"}) keep working; throws
  /// SchedulerSpecError on bad input.
  SchedulerSpec(const std::string& text);  // NOLINT(google-explicit-constructor)
  SchedulerSpec(const char* text);         // NOLINT(google-explicit-constructor)

  [[nodiscard]] static SchedulerSpec parse(const std::string& text);
  /// Canonical shortest form: lowercase, default tokens omitted.
  [[nodiscard]] std::string to_string() const;

  /// Constructs the scheduler.  `seed` feeds KGreedy+random and the MQB
  /// noise models; precise policies ignore it.
  [[nodiscard]] std::unique_ptr<Scheduler> instantiate(std::uint64_t seed = 0) const;

  friend bool operator==(const SchedulerSpec&, const SchedulerSpec&) = default;
};

/// All policy names parse() accepts as a first token, in display order.
[[nodiscard]] const std::vector<std::string>& valid_policy_names();

/// One spec per distinct registered configuration (every base policy,
/// every KGreedy order, every MQB scope/fidelity/rule variant) -- the
/// iteration set for exhaustive property tests.
[[nodiscard]] const std::vector<SchedulerSpec>& all_scheduler_specs();

}  // namespace fhs
