// Deadline-aware single-job policies: EDF and LLF over the task due
// dates of src/graph/analysis (ROADMAP "deadline- and energy-aware
// online scheduler family"; Liu & Layland 1973 for EDF, Mok 1983 for
// least-laxity).
//
// The due date due(v) = T_inf(J) - remaining_span(v) is the latest
// start of v that cannot delay the job, so a *finish-by* deadline for
// the task itself is dl(v) = due(v) + work(v).  The two policies rank a
// typed ready queue by:
//
//   EDF:  earliest dl(v) first                       (static per job)
//   LLF:  least laxity dl(v) - now - remaining(v)    (dynamic)
//
// For a task that has never run, remaining(v) == work(v) and the two
// orders coincide (laxity == due(v) - now, and `now` is common to one
// decision point); they diverge exactly when remaining work differs
// from total work -- preemptive recalls and fault-kill re-execution.
// The stream versions in src/rt/ add the cross-job terms (arrival
// offsets, utilization-bound slack) where the family earns its keep.
//
// Both use work/remaining-work, i.e. offline information per the §II
// boundary -- same class as LSpan/MaxDp/ShiftBT.
#pragma once

#include <vector>

#include "sched/priority_scheduler.hh"

namespace fhs {

/// Earliest-deadline-first by task finish deadline due(v) + work(v).
class EdfScheduler final : public PriorityScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "EDF"; }
  void prepare(const KDag& dag, const Cluster& cluster) override;

 protected:
  [[nodiscard]] double score(TaskId task, const DispatchContext& ctx) const override;

 private:
  std::vector<Time> deadline_;  // due(v) + work(v)
};

/// Least-laxity-first: laxity(v, t) = dl(v) - t - remaining(v).
class LlfScheduler final : public PriorityScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "LLF"; }
  void prepare(const KDag& dag, const Cluster& cluster) override;

 protected:
  [[nodiscard]] double score(TaskId task, const DispatchContext& ctx) const override;

 private:
  std::vector<Time> deadline_;  // due(v) + work(v)
};

}  // namespace fhs
