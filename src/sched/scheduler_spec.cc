#include "sched/scheduler_spec.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "sched/dtype.hh"
#include "sched/lspan.hh"
#include "sched/maxdp.hh"
#include "sched/realtime.hh"
#include "sched/shiftbt.hh"

namespace fhs {

namespace {

std::string lower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
  return text;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::stringstream stream(text);
  std::string part;
  while (std::getline(stream, part, sep)) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

std::string join(const std::vector<std::string>& names) {
  std::string text;
  for (const std::string& name : names) {
    if (!text.empty()) text += ", ";
    text += name;
  }
  return text;
}

const std::vector<std::string>& kgreedy_option_names() {
  static const std::vector<std::string> kNames = {"fifo", "lifo", "random"};
  return kNames;
}

const std::vector<std::string>& mqb_option_names() {
  static const std::vector<std::string> kNames = {
      "all", "1step", "pre", "exp", "noise", "minonly", "sumsq", "noself"};
  return kNames;
}

}  // namespace

SchedulerSpecError::SchedulerSpecError(const std::string& context, std::string token,
                                       std::vector<std::string> valid_names)
    : std::invalid_argument(context + ": unknown name '" + token +
                            "'; valid names: " + join(valid_names)),
      token_(std::move(token)),
      valid_names_(std::move(valid_names)) {}

SchedulerSpec::SchedulerSpec(const std::string& text) : SchedulerSpec(parse(text)) {}
SchedulerSpec::SchedulerSpec(const char* text) : SchedulerSpec(parse(text)) {}

SchedulerSpec SchedulerSpec::parse(const std::string& text) {
  const std::vector<std::string> parts = split(lower(text), '+');
  if (parts.empty()) {
    throw SchedulerSpecError("SchedulerSpec::parse", text, valid_policy_names());
  }

  SchedulerSpec spec;
  const std::string& head = parts[0];
  if (head == "kgreedy") {
    spec.policy = PolicyKind::kKGreedy;
  } else if (head == "lspan") {
    spec.policy = PolicyKind::kLSpan;
  } else if (head == "maxdp") {
    spec.policy = PolicyKind::kMaxDp;
  } else if (head == "dtype") {
    spec.policy = PolicyKind::kDType;
  } else if (head == "shiftbt") {
    spec.policy = PolicyKind::kShiftBt;
  } else if (head == "edd") {
    spec.policy = PolicyKind::kEdd;
  } else if (head == "edf") {
    spec.policy = PolicyKind::kEdf;
  } else if (head == "llf") {
    spec.policy = PolicyKind::kLlf;
  } else if (head == "mqb") {
    spec.policy = PolicyKind::kMqb;
  } else {
    throw SchedulerSpecError("SchedulerSpec::parse", head, valid_policy_names());
  }

  if (spec.policy == PolicyKind::kKGreedy) {
    for (std::size_t i = 1; i < parts.size(); ++i) {
      const std::string& token = parts[i];
      if (token == "fifo") {
        spec.order = DispatchOrder::kFifo;
      } else if (token == "lifo") {
        spec.order = DispatchOrder::kLifo;
      } else if (token == "random") {
        spec.order = DispatchOrder::kRandom;
      } else {
        throw SchedulerSpecError("SchedulerSpec::parse: kgreedy option in '" + text + "'",
                                 token, kgreedy_option_names());
      }
    }
    return spec;
  }
  if (spec.policy == PolicyKind::kMqb) {
    for (std::size_t i = 1; i < parts.size(); ++i) {
      const std::string& token = parts[i];
      if (token == "all") {
        spec.mqb.info.scope = InfoScope::kAll;
      } else if (token == "1step") {
        spec.mqb.info.scope = InfoScope::kOneStep;
      } else if (token == "pre" || token == "precise") {
        spec.mqb.info.fidelity = InfoFidelity::kPrecise;
      } else if (token == "exp") {
        spec.mqb.info.fidelity = InfoFidelity::kExponential;
      } else if (token == "noise") {
        spec.mqb.info.fidelity = InfoFidelity::kNoisy;
      } else if (token == "minonly") {
        spec.mqb.balance_rule = BalanceRule::kMinOnly;
      } else if (token == "sumsq") {
        spec.mqb.balance_rule = BalanceRule::kSumOfSquares;
      } else if (token == "noself") {
        spec.mqb.subtract_self_work = false;
      } else {
        throw SchedulerSpecError("SchedulerSpec::parse: MQB option in '" + text + "'",
                                 token, mqb_option_names());
      }
    }
    return spec;
  }
  if (parts.size() > 1) {
    throw SchedulerSpecError(
        "SchedulerSpec::parse: '" + head + "' takes no options, got '" + text + "'",
        parts[1], {head});
  }
  return spec;
}

std::string SchedulerSpec::to_string() const {
  switch (policy) {
    case PolicyKind::kKGreedy:
      switch (order) {
        case DispatchOrder::kFifo: return "kgreedy";
        case DispatchOrder::kLifo: return "kgreedy+lifo";
        case DispatchOrder::kRandom: return "kgreedy+random";
      }
      return "kgreedy";
    case PolicyKind::kLSpan: return "lspan";
    case PolicyKind::kMaxDp: return "maxdp";
    case PolicyKind::kDType: return "dtype";
    case PolicyKind::kShiftBt: return "shiftbt";
    case PolicyKind::kEdd: return "edd";
    case PolicyKind::kEdf: return "edf";
    case PolicyKind::kLlf: return "llf";
    case PolicyKind::kMqb: {
      std::string text = "mqb";
      if (mqb.info.scope == InfoScope::kOneStep) text += "+1step";
      if (mqb.info.fidelity == InfoFidelity::kExponential) text += "+exp";
      if (mqb.info.fidelity == InfoFidelity::kNoisy) text += "+noise";
      if (mqb.balance_rule == BalanceRule::kMinOnly) text += "+minonly";
      if (mqb.balance_rule == BalanceRule::kSumOfSquares) text += "+sumsq";
      if (!mqb.subtract_self_work) text += "+noself";
      return text;
    }
  }
  return "kgreedy";
}

std::unique_ptr<Scheduler> SchedulerSpec::instantiate(std::uint64_t seed) const {
  switch (policy) {
    case PolicyKind::kKGreedy: return std::make_unique<KGreedyScheduler>(order, seed);
    case PolicyKind::kLSpan: return std::make_unique<LSpanScheduler>();
    case PolicyKind::kMaxDp: return std::make_unique<MaxDpScheduler>();
    case PolicyKind::kDType: return std::make_unique<DTypeScheduler>();
    case PolicyKind::kShiftBt: return std::make_unique<ShiftBtScheduler>();
    case PolicyKind::kEdd: return std::make_unique<EddScheduler>();
    case PolicyKind::kEdf: return std::make_unique<EdfScheduler>();
    case PolicyKind::kLlf: return std::make_unique<LlfScheduler>();
    case PolicyKind::kMqb: {
      MqbOptions options = mqb;
      options.info.noise_seed = seed;
      return std::make_unique<MqbScheduler>(options);
    }
  }
  throw std::logic_error("SchedulerSpec::instantiate: corrupt policy kind");
}

const std::vector<std::string>& valid_policy_names() {
  static const std::vector<std::string> kNames = {
      "kgreedy", "lspan", "maxdp", "dtype", "shiftbt", "edd", "edf", "llf", "mqb"};
  return kNames;
}

const std::vector<SchedulerSpec>& all_scheduler_specs() {
  static const std::vector<SchedulerSpec> kSpecs = [] {
    std::vector<SchedulerSpec> specs;
    for (const char* text :
         {"kgreedy", "kgreedy+lifo", "kgreedy+random", "lspan", "maxdp", "dtype",
          "shiftbt", "edd", "edf", "llf", "mqb", "mqb+exp", "mqb+noise", "mqb+1step",
          "mqb+1step+exp", "mqb+1step+noise", "mqb+minonly", "mqb+sumsq",
          "mqb+noself"}) {
      specs.push_back(SchedulerSpec::parse(text));
    }
    return specs;
  }();
  return kSpecs;
}

}  // namespace fhs
