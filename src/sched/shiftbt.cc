#include "sched/shiftbt.hh"

#include <algorithm>
#include <limits>

#include "graph/analysis.hh"
#include "sim/engine.hh"

namespace fhs {

void EddScheduler::prepare(const KDag& dag, const Cluster& cluster) {
  (void)cluster;
  due_ = due_dates(dag);
}

double EddScheduler::score(TaskId task, const DispatchContext& ctx) const {
  (void)ctx;
  return -static_cast<double>(due_[task]);  // earlier due date first
}

namespace {

/// EDD dispatch with externally supplied due dates (used for the relaxed
/// subproblems inside prepare()).
class SubproblemEddScheduler final : public PriorityScheduler {
 public:
  explicit SubproblemEddScheduler(const std::vector<Time>& due) : due_(&due) {}
  [[nodiscard]] std::string name() const override { return "EDD-subproblem"; }
  void prepare(const KDag& dag, const Cluster& cluster) override {
    (void)dag;
    (void)cluster;
  }

 protected:
  [[nodiscard]] double score(TaskId task, const DispatchContext& ctx) const override {
    (void)ctx;
    return -static_cast<double>((*due_)[task]);  // earlier due date first
  }

 private:
  const std::vector<Time>* due_;
};

struct Subproblem {
  Time max_lateness = std::numeric_limits<Time>::min();
  std::vector<Time> start_times;
};

/// Simulates the job with only the types in `constrained` held to their
/// real processor counts (all other types relaxed to "infinite", i.e. one
/// processor per task of the type), dispatching EDD by `due`.  Returns
/// the max lateness of `probe`-type tasks and every task's start time.
Subproblem solve_subproblem(const KDag& dag, const Cluster& cluster,
                            const std::vector<bool>& constrained, ResourceType probe,
                            const std::vector<Time>& due) {
  std::vector<std::uint32_t> counts(dag.num_types());
  for (ResourceType a = 0; a < dag.num_types(); ++a) {
    if (constrained[a]) {
      counts[a] = cluster.processors(a);
    } else {
      // One processor per task of this type can never be a constraint.
      counts[a] = std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(dag.task_count(a)));
    }
  }
  const Cluster relaxed{std::move(counts)};
  SubproblemEddScheduler edd(due);
  ExecutionTrace trace;
  SimOptions options;
  options.record_trace = true;
  (void)simulate(dag, relaxed, edd, options, &trace);

  Subproblem result;
  result.start_times.assign(dag.task_count(), 0);
  for (const TraceSegment& seg : trace.segments()) {
    result.start_times[seg.task] = seg.start;  // one segment per task here
  }
  for (TaskId v = 0; v < dag.task_count(); ++v) {
    if (dag.type(v) != probe) continue;
    result.max_lateness = std::max(result.max_lateness, result.start_times[v] - due[v]);
  }
  return result;
}

}  // namespace

void ShiftBtScheduler::prepare(const KDag& dag, const Cluster& cluster) {
  due_ = due_dates(dag);
  bottleneck_order_.clear();

  const ResourceType k = dag.num_types();
  std::vector<bool> fixed(k, false);
  for (ResourceType round = 0; round < k; ++round) {
    ResourceType best_type = kMaxResourceTypes;
    Time best_lateness = std::numeric_limits<Time>::min();
    Subproblem best_sub;
    for (ResourceType alpha = 0; alpha < k; ++alpha) {
      if (fixed[alpha]) continue;
      std::vector<bool> constrained = fixed;
      constrained[alpha] = true;
      Subproblem sub = solve_subproblem(dag, cluster, constrained, alpha, due_);
      if (dag.task_count(alpha) == 0) sub.max_lateness = std::numeric_limits<Time>::min();
      if (best_type == kMaxResourceTypes || sub.max_lateness > best_lateness) {
        best_type = alpha;
        best_lateness = sub.max_lateness;
        best_sub = std::move(sub);
      }
    }
    fixed[best_type] = true;
    bottleneck_order_.push_back(best_type);
    // Re-sequencing step: the bottleneck subproblem's start times become
    // the due dates for the remaining iterations and for final dispatch.
    due_ = std::move(best_sub.start_times);
  }
}

double ShiftBtScheduler::score(TaskId task, const DispatchContext& ctx) const {
  (void)ctx;
  return -static_cast<double>(due_[task]);
}

}  // namespace fhs
