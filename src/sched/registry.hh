// Name-based scheduler factory -- a thin wrapper over the typed
// SchedulerSpec API (sched/scheduler_spec.hh), kept for call sites that
// hold a raw string from the command line.  Recognized names
// (case-insensitive; see SchedulerSpec for the full grammar):
//
//   kgreedy | kgreedy+lifo | kgreedy+random
//   lspan | maxdp | dtype | shiftbt | edd (ShiftBT minus bottleneck iterations)
//   mqb                      (= mqb+all+pre)
//   mqb+{all,1step}+{pre,exp,noise}
//   mqb+...+minonly | mqb+...+sumsq | mqb+...+noself   (ablation variants)
//
// `seed` feeds the noise models; precise policies ignore it.  Unknown
// names raise SchedulerSpecError (a std::invalid_argument) whose message
// lists the valid alternatives.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler_spec.hh"
#include "sim/scheduler.hh"

namespace fhs {

/// Creates a scheduler by name; throws std::invalid_argument for unknown
/// names.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(const std::string& spec,
                                                        std::uint64_t seed = 0);

/// The paper's six policies in figure order (Fig. 4-7).
[[nodiscard]] const std::vector<SchedulerSpec>& paper_scheduler_names();

/// The seven series of Fig. 8 (KGreedy + six MQB information variants).
[[nodiscard]] const std::vector<SchedulerSpec>& fig8_scheduler_names();

/// Splits a comma-separated list of scheduler specs and parses each one;
/// throws SchedulerSpecError on the first unknown name.
[[nodiscard]] std::vector<SchedulerSpec> split_scheduler_list(const std::string& list);

}  // namespace fhs
