// Name-based scheduler factory -- a thin wrapper over the typed
// SchedulerSpec API (sched/scheduler_spec.hh), kept for call sites that
// hold a raw string from the command line.  Recognized names
// (case-insensitive; see SchedulerSpec for the full grammar):
//
//   kgreedy | kgreedy+lifo | kgreedy+random
//   lspan | maxdp | dtype | shiftbt | edd (ShiftBT minus bottleneck iterations)
//   mqb                      (= mqb+all+pre)
//   mqb+{all,1step}+{pre,exp,noise}
//   mqb+...+minonly | mqb+...+sumsq | mqb+...+noself   (ablation variants)
//
// `seed` feeds the noise models; precise policies ignore it.  Unknown
// names raise SchedulerSpecError (a std::invalid_argument) whose message
// lists the valid alternatives.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/kdag.hh"
#include "machine/cluster.hh"
#include "sched/scheduler_spec.hh"
#include "sim/engine.hh"
#include "sim/scheduler.hh"

namespace fhs {

/// Creates a scheduler by name; throws std::invalid_argument for unknown
/// names.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(const std::string& spec,
                                                        std::uint64_t seed = 0);

/// The paper's six policies in figure order (Fig. 4-7).
[[nodiscard]] const std::vector<SchedulerSpec>& paper_scheduler_names();

/// The seven series of Fig. 8 (KGreedy + six MQB information variants).
[[nodiscard]] const std::vector<SchedulerSpec>& fig8_scheduler_names();

/// Splits a comma-separated list of scheduler specs and parses each one;
/// throws SchedulerSpecError on the first unknown name.
[[nodiscard]] std::vector<SchedulerSpec> split_scheduler_list(const std::string& list);

/// Instantiates `spec` and simulates it once on (dag, cluster), returning
/// the completion time T(J).  One-stop makespan extraction: the exact
/// solver (src/opt) warms its incumbent with the MQB schedule this way,
/// and ad-hoc comparisons avoid re-spelling the instantiate + simulate
/// dance.  Propagates whatever simulate throws.
[[nodiscard]] Time schedule_makespan(const KDag& dag, const Cluster& cluster,
                                     const SchedulerSpec& spec,
                                     ExecutionMode mode = ExecutionMode::kNonPreemptive,
                                     std::uint64_t seed = 0);

}  // namespace fhs
