// Name-based scheduler factory.
//
// Benches and examples select policies by string so sweeps can be driven
// from the command line.  Recognized names (case-insensitive):
//
//   kgreedy | kgreedy+lifo | kgreedy+random
//   lspan | maxdp | dtype | shiftbt | edd (ShiftBT minus bottleneck iterations)
//   mqb                      (= mqb+all+pre)
//   mqb+{all,1step}+{pre,exp,noise}
//   mqb+...+minonly | mqb+...+sumsq | mqb+...+noself   (ablation variants)
//
// `seed` feeds the noise models; precise policies ignore it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.hh"

namespace fhs {

/// Creates a scheduler by name; throws std::invalid_argument for unknown
/// names.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(const std::string& spec,
                                                        std::uint64_t seed = 0);

/// The paper's six policies in figure order (Fig. 4-7).
[[nodiscard]] const std::vector<std::string>& paper_scheduler_names();

/// The seven series of Fig. 8 (KGreedy + six MQB information variants).
[[nodiscard]] const std::vector<std::string>& fig8_scheduler_names();

/// Splits a comma-separated list of scheduler specs.
[[nodiscard]] std::vector<std::string> split_scheduler_list(const std::string& list);

}  // namespace fhs
