#include "sched/lspan.hh"

namespace fhs {

void LSpanScheduler::prepare(const KDag& dag, const Cluster& cluster) {
  (void)cluster;
  dag_ = &dag;
  analysis_ = std::make_unique<JobAnalysis>(dag);
}

double LSpanScheduler::score(TaskId task, const DispatchContext& ctx) const {
  // remaining_span was computed with the full work; subtract any work
  // already executed (nonzero only under preemption).
  const Work executed = dag_->work(task) - ctx.remaining_work(task);
  return static_cast<double>(analysis_->remaining_span_of(task) - executed);
}

}  // namespace fhs
