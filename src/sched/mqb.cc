#include "sched/mqb.hh"

#include <algorithm>
#include <cassert>

namespace fhs {

MqbScheduler::MqbScheduler(MqbOptions options) : options_(options) {}

std::string MqbScheduler::name() const {
  std::string text = "MQB+" + options_.info.describe();
  switch (options_.balance_rule) {
    case BalanceRule::kLexicographic: break;
    case BalanceRule::kMinOnly: text += "+minonly"; break;
    case BalanceRule::kSumOfSquares: text += "+sumsq"; break;
  }
  if (!options_.subtract_self_work) text += "+noself";
  return text;
}

void MqbScheduler::prepare(const KDag& dag, const Cluster& cluster) {
  (void)cluster;
  analysis_ = std::make_unique<JobAnalysis>(dag);
  table_ = std::make_unique<DescendantTable>(*analysis_, options_.info);
}

bool MqbScheduler::better_balance(const std::vector<double>& a,
                                  const std::vector<double>& b,
                                  const std::vector<double>& inv_procs) const {
  const std::size_t k = a.size();
  switch (options_.balance_rule) {
    case BalanceRule::kLexicographic: {
      sorted_a_.resize(k);
      sorted_b_.resize(k);
      for (std::size_t i = 0; i < k; ++i) {
        sorted_a_[i] = a[i] * inv_procs[i];
        sorted_b_[i] = b[i] * inv_procs[i];
      }
      std::sort(sorted_a_.begin(), sorted_a_.end());
      std::sort(sorted_b_.begin(), sorted_b_.end());
      // R_A > R_B lexicographically (paper's definition of better balance).
      return std::lexicographical_compare(sorted_b_.begin(), sorted_b_.end(),
                                          sorted_a_.begin(), sorted_a_.end());
    }
    case BalanceRule::kMinOnly: {
      double min_a = a[0] * inv_procs[0];
      double min_b = b[0] * inv_procs[0];
      for (std::size_t i = 1; i < k; ++i) {
        min_a = std::min(min_a, a[i] * inv_procs[i]);
        min_b = std::min(min_b, b[i] * inv_procs[i]);
      }
      return min_a > min_b;
    }
    case BalanceRule::kSumOfSquares: {
      double mean_a = 0.0;
      double mean_b = 0.0;
      for (std::size_t i = 0; i < k; ++i) {
        mean_a += a[i] * inv_procs[i];
        mean_b += b[i] * inv_procs[i];
      }
      mean_a /= static_cast<double>(k);
      mean_b /= static_cast<double>(k);
      double dev_a = 0.0;
      double dev_b = 0.0;
      for (std::size_t i = 0; i < k; ++i) {
        const double da = a[i] * inv_procs[i] - mean_a;
        const double db = b[i] * inv_procs[i] - mean_b;
        dev_a += da * da;
        dev_b += db * db;
      }
      return dev_a < dev_b;  // lower deviation = better balance
    }
  }
  return false;
}

void MqbScheduler::dispatch(DispatchContext& ctx) {
  const ResourceType k = ctx.num_types();
  assert(table_ != nullptr && "prepare() must run before dispatch()");

  inv_procs_.resize(k);
  for (ResourceType a = 0; a < k; ++a) {
    inv_procs_[a] = 1.0 / static_cast<double>(ctx.total_processors(a));
  }

  // Hypothetical queue-work vector, carried across picks of this
  // decision point.  Starts from the real l_alpha.
  hypo_.assign(k, 0.0);
  for (ResourceType a = 0; a < k; ++a) {
    hypo_[a] = static_cast<double>(ctx.queue_work(a));
  }

  auto apply_pick = [&](ResourceType alpha, TaskId task) {
    if (options_.subtract_self_work) {
      hypo_[alpha] -= static_cast<double>(ctx.remaining_work(task));
    }
    const auto row = table_->row(task);
    for (ResourceType b = 0; b < k; ++b) hypo_[b] += row[b];
  };

  for (ResourceType alpha = 0; alpha < k; ++alpha) {
    while (ctx.free_processors(alpha) > 0 && !ctx.ready(alpha).empty()) {
      const auto queue = ctx.ready(alpha);
      if (queue.size() <= ctx.free_processors(alpha)) {
        // At most P_alpha ready tasks: run them all (paper §IV-A).  Still
        // track the hypothetical state for later types' picks.
        while (!ctx.ready(alpha).empty()) {
          const TaskId task = ctx.ready(alpha)[0];
          apply_pick(alpha, task);
          ctx.assign(alpha, 0);
        }
        break;
      }
      // Contended: score every candidate by the balance of its snapshot.
      std::size_t best_index = 0;
      bool have_best = false;
      for (std::size_t i = 0; i < queue.size(); ++i) {
        const TaskId task = queue[i];
        candidate_ = hypo_;
        if (options_.subtract_self_work) {
          candidate_[alpha] -= static_cast<double>(ctx.remaining_work(task));
        }
        const auto row = table_->row(task);
        for (ResourceType b = 0; b < k; ++b) candidate_[b] += row[b];
        if (!have_best || better_balance(candidate_, best_snapshot_, inv_procs_)) {
          have_best = true;
          best_index = i;
          best_snapshot_ = candidate_;
        }
      }
      hypo_ = best_snapshot_;
      ctx.assign(alpha, best_index);
    }
  }
}

}  // namespace fhs
