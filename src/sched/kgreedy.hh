// KGreedy -- the online baseline (paper §III).
//
// One greedy (Graham-style) list scheduler per resource type: whenever an
// alpha-processor is free and an alpha-task is ready, run it.  The paper
// proves KGreedy is (K+1)-competitive, essentially matching the online
// lower bound of Theorem 2.
//
// "Executes any P of them" leaves the pick order open; we provide three
// online orders.  FIFO (oldest-ready first) is the default and canonical
// choice.  LIFO and seeded-random exist to test the paper's §III claim
// that "randomization is of little help in improving the performances of
// online scheduling algorithms" (bench/ablation_dispatch_order).
//
// KGreedy is *online*: it never inspects task works, descendant values,
// or queue work totals.
#pragma once

#include <cstdint>

#include "sim/scheduler.hh"
#include "support/rng.hh"

namespace fhs {

enum class DispatchOrder : std::uint8_t { kFifo, kLifo, kRandom };

class KGreedyScheduler final : public Scheduler {
 public:
  explicit KGreedyScheduler(DispatchOrder order = DispatchOrder::kFifo,
                            std::uint64_t seed = 0);

  [[nodiscard]] std::string name() const override;
  void prepare(const KDag& dag, const Cluster& cluster) override;
  void dispatch(DispatchContext& ctx) override;

  [[nodiscard]] DispatchOrder order() const noexcept { return order_; }

 private:
  DispatchOrder order_;
  std::uint64_t seed_;
  Rng rng_;
};

}  // namespace fhs
