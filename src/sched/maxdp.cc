#include "sched/maxdp.hh"

#include "graph/analysis.hh"

namespace fhs {

void MaxDpScheduler::prepare(const KDag& dag, const Cluster& cluster) {
  (void)cluster;
  descendant_ = untyped_descendant_values(dag);
}

double MaxDpScheduler::score(TaskId task, const DispatchContext& ctx) const {
  (void)ctx;
  return descendant_[task];
}

}  // namespace fhs
