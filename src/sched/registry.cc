#include "sched/registry.hh"

#include <sstream>

#include "sched/scheduler_spec.hh"

namespace fhs {

std::unique_ptr<Scheduler> make_scheduler(const std::string& spec, std::uint64_t seed) {
  return SchedulerSpec::parse(spec).instantiate(seed);
}

const std::vector<SchedulerSpec>& paper_scheduler_names() {
  static const std::vector<SchedulerSpec> kSpecs = {"kgreedy", "lspan",   "dtype",
                                                    "maxdp",   "shiftbt", "mqb"};
  return kSpecs;
}

const std::vector<SchedulerSpec>& fig8_scheduler_names() {
  static const std::vector<SchedulerSpec> kSpecs = {
      "kgreedy",        "mqb+all+pre",   "mqb+all+exp",   "mqb+all+noise",
      "mqb+1step+pre",  "mqb+1step+exp", "mqb+1step+noise"};
  return kSpecs;
}

Time schedule_makespan(const KDag& dag, const Cluster& cluster, const SchedulerSpec& spec,
                       ExecutionMode mode, std::uint64_t seed) {
  const std::unique_ptr<Scheduler> scheduler = spec.instantiate(seed);
  SimOptions options;
  options.mode = mode;
  return simulate(dag, cluster, *scheduler, options).completion_time;
}

std::vector<SchedulerSpec> split_scheduler_list(const std::string& list) {
  std::vector<SchedulerSpec> parts;
  std::stringstream stream(list);
  std::string part;
  while (std::getline(stream, part, ',')) {
    if (!part.empty()) parts.push_back(SchedulerSpec::parse(part));
  }
  return parts;
}

}  // namespace fhs
