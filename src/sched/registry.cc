#include "sched/registry.hh"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "sched/dtype.hh"
#include "sched/kgreedy.hh"
#include "sched/lspan.hh"
#include "sched/maxdp.hh"
#include "sched/mqb.hh"
#include "sched/shiftbt.hh"

namespace fhs {

namespace {
std::string lower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
  return text;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::stringstream stream(text);
  std::string part;
  while (std::getline(stream, part, sep)) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}
}  // namespace

std::unique_ptr<Scheduler> make_scheduler(const std::string& spec, std::uint64_t seed) {
  const std::string name = lower(spec);
  if (name == "kgreedy") return std::make_unique<KGreedyScheduler>();
  if (name == "kgreedy+lifo") {
    return std::make_unique<KGreedyScheduler>(DispatchOrder::kLifo);
  }
  if (name == "kgreedy+random") {
    return std::make_unique<KGreedyScheduler>(DispatchOrder::kRandom, seed);
  }
  if (name == "lspan") return std::make_unique<LSpanScheduler>();
  if (name == "maxdp") return std::make_unique<MaxDpScheduler>();
  if (name == "dtype") return std::make_unique<DTypeScheduler>();
  if (name == "shiftbt") return std::make_unique<ShiftBtScheduler>();
  if (name == "edd") return std::make_unique<EddScheduler>();

  const std::vector<std::string> parts = split(name, '+');
  if (!parts.empty() && parts[0] == "mqb") {
    MqbOptions options;
    options.info.noise_seed = seed;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      const std::string& token = parts[i];
      if (token == "all") {
        options.info.scope = InfoScope::kAll;
      } else if (token == "1step") {
        options.info.scope = InfoScope::kOneStep;
      } else if (token == "pre" || token == "precise") {
        options.info.fidelity = InfoFidelity::kPrecise;
      } else if (token == "exp") {
        options.info.fidelity = InfoFidelity::kExponential;
      } else if (token == "noise") {
        options.info.fidelity = InfoFidelity::kNoisy;
      } else if (token == "minonly") {
        options.balance_rule = BalanceRule::kMinOnly;
      } else if (token == "sumsq") {
        options.balance_rule = BalanceRule::kSumOfSquares;
      } else if (token == "noself") {
        options.subtract_self_work = false;
      } else {
        throw std::invalid_argument("make_scheduler: unknown MQB option '" + token +
                                    "' in '" + spec + "'");
      }
    }
    return std::make_unique<MqbScheduler>(options);
  }
  throw std::invalid_argument("make_scheduler: unknown scheduler '" + spec + "'");
}

const std::vector<std::string>& paper_scheduler_names() {
  static const std::vector<std::string> kNames = {"kgreedy", "lspan",   "dtype",
                                                  "maxdp",   "shiftbt", "mqb"};
  return kNames;
}

const std::vector<std::string>& fig8_scheduler_names() {
  static const std::vector<std::string> kNames = {
      "kgreedy",        "mqb+all+pre",   "mqb+all+exp",   "mqb+all+noise",
      "mqb+1step+pre",  "mqb+1step+exp", "mqb+1step+noise"};
  return kNames;
}

std::vector<std::string> split_scheduler_list(const std::string& list) {
  return split(list, ',');
}

}  // namespace fhs
