// DType -- different type first (paper §IV-B).
//
// Picks the ready task with the smallest *different-child distance*: the
// shortest edge-distance to any descendant of a different type.  This
// prioritizes tasks that unlock work for other resource types, a direct
// (if myopic) form of utilization balancing.  Tasks with no
// different-type descendant rank last.
#pragma once

#include <vector>

#include "sched/priority_scheduler.hh"

namespace fhs {

class DTypeScheduler final : public PriorityScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "DType"; }
  void prepare(const KDag& dag, const Cluster& cluster) override;

 protected:
  [[nodiscard]] double score(TaskId task, const DispatchContext& ctx) const override;

 private:
  std::vector<std::size_t> distance_;
};

}  // namespace fhs
