// fhs_sim -- run one scheduling policy on one job and inspect the result.
//
//   fhs_sim --workload=ir --assignment=layered --k=4 --scheduler=mqb
//           --procs=12,12,12,12 --timeline --gantt
//   fhs_sim --load=job.kdag --scheduler=shiftbt --pmin=2 --pmax=4
//   fhs_sim --workload=ep --save=job.kdag --dot=job.dot
//
// The job comes from one of the paper's generators (--workload) or from
// a serialized file (--load); the machine from explicit per-type counts
// (--procs) or sampled uniformly (--pmin/--pmax).  Prints completion
// time, the lower bound, the ratio, per-type utilization, and optionally
// the utilization timeline, a Gantt chart, DOT and .kdag exports.
#include <fstream>
#include <iostream>

#include "exp/tool_options.hh"
#include "graph/dot.hh"
#include "graph/serialize.hh"
#include "metrics/bounds.hh"
#include "metrics/chrome_trace.hh"
#include "metrics/svg.hh"
#include "metrics/timeline.hh"
#include "sched/registry.hh"
#include "sim/engine.hh"
#include "sim/schedule_checker.hh"
#include "support/cli.hh"
#include "support/rng.hh"
#include "workload/workload.hh"

namespace {

using namespace fhs;

KDag make_job(const CliFlags& flags, Rng& rng) {
  const std::string load = flags.get_string("load");
  if (!load.empty()) {
    std::ifstream in(load);
    if (!in) throw std::runtime_error("cannot open " + load);
    return read_kdag(in);
  }
  const auto k = static_cast<ResourceType>(flags.get_int("k"));
  const TypeAssignment assignment =
      parse_type_assignment(flags.get_string("assignment"));
  return generate(
      parse_workload_family(flags.get_string("workload"), assignment, k), rng);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fhs;
  CliFlags flags;
  flags.define("workload", "ir", "job family: ep | tree | ir (ignored with --load)");
  flags.define("assignment", "layered", "type assignment: layered | random");
  flags.define_int("k", 4, "number of resource types");
  flags.define("load", "", "read the job from a .kdag file instead of generating");
  flags.define("scheduler", "mqb", "policy name (see sched/registry.hh)");
  flags.define_uint_list("procs", "",
                         "explicit per-type processor counts, e.g. 12,12,12,12");
  flags.define_int("pmin", 10, "sampled processors per type, lower bound");
  flags.define_int("pmax", 20, "sampled processors per type, upper bound");
  flags.define_bool("preemptive", false, "preemptive scheduling quantum");
  flags.define("faults", "",
               "fault plan spec, e.g. p3:fail@100;p3:recover@250;p0:slowx2@40 "
               "(see fault/fault_plan.hh)");
  flags.define_int("seed", 42, "RNG seed (job + cluster sampling)");
  flags.define_bool("timeline", false, "print the per-type utilization timeline");
  flags.define_bool("gantt", false, "print a per-processor Gantt chart");
  flags.define("dot", "", "write the job as Graphviz DOT to this file");
  flags.define("save", "", "write the job as .kdag text to this file");
  flags.define("svg", "", "write the schedule as an SVG Gantt chart to this file");
  flags.define("trace-out", "",
               "write the schedule as Chrome trace-event JSON to this file "
               "(open in chrome://tracing or ui.perfetto.dev)");
  try {
    if (!flags.parse(argc, argv)) return 0;

    Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
    const KDag job = make_job(flags, rng);
    const std::vector<std::uint32_t> procs = flags.get_uint_list("procs");
    const Cluster cluster =
        procs.empty()
            ? sample_uniform_cluster(job.num_types(),
                                     static_cast<std::uint32_t>(flags.get_int("pmin")),
                                     static_cast<std::uint32_t>(flags.get_int("pmax")),
                                     rng)
            : Cluster(procs);

    if (!flags.get_string("save").empty()) {
      std::ofstream out(flags.get_string("save"));
      write_kdag(out, job);
    }
    if (!flags.get_string("dot").empty()) {
      std::ofstream out(flags.get_string("dot"));
      write_dot(out, job);
    }

    auto scheduler = make_scheduler(flags.get_string("scheduler"),
                                    static_cast<std::uint64_t>(flags.get_int("seed")));
    const FaultPlan faults = FaultPlan::parse(flags.get_string("faults"));
    if (!faults.empty()) faults.validate_against(cluster);
    ExecutionTrace trace;
    SimOptions options;
    options.mode = flags.get_bool("preemptive") ? ExecutionMode::kPreemptive
                                                : ExecutionMode::kNonPreemptive;
    options.record_trace = true;
    if (!faults.empty()) options.faults = &faults;
    const SimResult result = simulate(job, cluster, *scheduler, options, &trace);

    CheckOptions check;
    check.require_non_preemptive = !flags.get_bool("preemptive");
    check.faults = options.faults;
    const auto violations = check_schedule(job, cluster, trace, check);
    if (!violations.empty()) {
      std::cerr << "INTERNAL ERROR: invalid schedule: " << violations.front() << '\n';
      return 2;
    }

    std::cout << "job: " << job.task_count() << " tasks, " << job.edge_count()
              << " edges, K=" << static_cast<unsigned>(job.num_types()) << '\n';
    std::cout << "cluster: " << cluster.describe() << '\n';
    std::cout << "scheduler: " << scheduler->name()
              << (flags.get_bool("preemptive") ? " (preemptive)" : "") << '\n';
    std::cout << "completion time: " << result.completion_time << " ticks\n";
    std::cout << "lower bound:     " << completion_time_lower_bound(job, cluster)
              << " ticks\n";
    std::cout << "ratio:           "
              << completion_time_ratio(result.completion_time, job, cluster) << '\n';
    for (ResourceType a = 0; a < job.num_types(); ++a) {
      std::cout << "  type " << static_cast<unsigned>(a) << ": P="
                << cluster.processors(a) << " work=" << job.total_work(a)
                << " utilization=" << result.utilization(a, cluster) << '\n';
    }
    if (!faults.empty()) {
      std::cout << "faults: " << faults.to_string() << '\n'
                << "  failures=" << result.faults.failures
                << " recoveries=" << result.faults.recoveries
                << " slowdowns=" << result.faults.slowdowns
                << " tasks_killed=" << result.faults.tasks_killed
                << " work_discarded=" << result.faults.work_discarded << '\n';
    }
    if (flags.get_bool("timeline")) {
      const UtilizationTimeline timeline(job, cluster, trace, 72);
      std::cout << "\nutilization timeline ('#'>=85%, '+', '-', '.', ' ' idle):\n";
      timeline.print(std::cout);
    }
    if (!flags.get_string("svg").empty()) {
      std::ofstream out(flags.get_string("svg"));
      SvgOptions svg;
      svg.title = scheduler->name() + " on " + cluster.describe();
      write_svg_gantt(out, job, cluster, trace, svg);
      std::cout << "wrote " << flags.get_string("svg") << '\n';
    }
    if (!flags.get_string("trace-out").empty()) {
      std::ofstream out(flags.get_string("trace-out"));
      if (!out) throw std::runtime_error("cannot open " + flags.get_string("trace-out"));
      ChromeTraceOptions trace_options;
      trace_options.process_name = scheduler->name() + " on " + cluster.describe();
      write_chrome_trace(out, job, cluster, trace, trace_options);
      std::cout << "wrote " << flags.get_string("trace-out") << '\n';
    }
    if (flags.get_bool("gantt")) {
      std::cout << "\nGantt (one row per processor):\n";
      const Time scale = std::max<Time>(1, result.completion_time / 100);
      trace.print_gantt(std::cout, cluster.total_processors(), scale);
    }
  } catch (const std::exception& error) {
    std::cerr << "fhs_sim: " << error.what() << '\n';
    return 1;
  }
  return 0;
}
