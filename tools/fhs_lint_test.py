#!/usr/bin/env python3
"""Unit tests for fhs_lint: every rule fires on its trigger fixture,
clean code stays clean, and the allow() escape hatch suppresses.

Run directly (python3 tools/fhs_lint_test.py) or via ctest as
fhs_lint_unit.  Fixture root defaults to tests/lint_fixtures next to
the repo root; override with FHS_LINT_FIXTURES."""

from __future__ import annotations

import io
import os
import pathlib
import sys
import unittest
from contextlib import redirect_stderr, redirect_stdout

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import fhs_lint  # noqa: E402


FIXTURES = pathlib.Path(
    os.environ.get(
        "FHS_LINT_FIXTURES",
        pathlib.Path(__file__).resolve().parent.parent / "tests" / "lint_fixtures",
    )
)


def run_lint(*argv: str) -> tuple[int, str, str]:
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = fhs_lint.main(list(argv))
    return code, out.getvalue(), err.getvalue()


class TriggerFixtures(unittest.TestCase):
    """Each rule must fire on its dedicated fixture, at the right file."""

    def findings_for(self, relative: str) -> list[str]:
        code, out, _ = run_lint(str(FIXTURES / "trigger" / "src" / relative))
        self.assertEqual(code, 1, f"expected findings in {relative}\n{out}")
        return out.splitlines()

    def test_wall_clock(self) -> None:
        lines = self.findings_for("sim/wall_clock_bad.cc")
        self.assertGreaterEqual(len([l for l in lines if "[wall-clock]" in l]), 4)
        self.assertFalse(any("steady_clock" in l for l in lines),
                        "steady_clock must be exempt")

    def test_unordered_iter(self) -> None:
        lines = self.findings_for("sched/unordered_iter_bad.cc")
        flagged = [l for l in lines if "[unordered-iter]" in l]
        self.assertEqual(len(flagged), 2, lines)

    def test_pointer_order(self) -> None:
        lines = self.findings_for("graph/pointer_order_bad.cc")
        flagged = [l for l in lines if "[pointer-order]" in l]
        self.assertGreaterEqual(len(flagged), 3, lines)

    def test_stream_hot_path(self) -> None:
        lines = self.findings_for("multijob/stream_bad.cc")
        flagged = [l for l in lines if "[stream-hot-path]" in l]
        self.assertEqual(len(flagged), 2, lines)  # cout + endl, same line

    def test_guarded_field(self) -> None:
        lines = self.findings_for("service/guarded_field_bad.hh")
        flagged = [l for l in lines if "[guarded-field]" in l]
        self.assertEqual(len(flagged), 2, lines)  # items_ and pushes_ only

    def test_time_arith(self) -> None:
        lines = self.findings_for("core/time_arith_bad.cc")
        flagged = [l for l in lines if "[time-arith]" in l]
        self.assertEqual(len(flagged), 5, lines)  # 2 decls + 2 muls + 1 shl
        self.assertFalse(any("ticket_id" in l for l in lines),
                         "'ticket' must not match the 'tick' segment")
        self.assertFalse(any("energy_milli" in l for l in lines),
                         "uint64_t boundary fields are exempt")
        self.assertFalse(any("util" in l for l in lines),
                         "double-typed statistics lines are exempt")

    def test_module_layering(self) -> None:
        lines = self.findings_for("core/layering_bad.cc")
        flagged = [l for l in lines if "[module-layering]" in l]
        self.assertEqual(len(flagged), 2, lines)  # rt/ + service/, not support/
        self.assertFalse(any("support" in l for l in flagged),
                         "support/ is a sibling bottom layer, not a violation")

    def test_whole_trigger_tree_fails(self) -> None:
        code, out, err = run_lint(str(FIXTURES / "trigger"))
        self.assertEqual(code, 1)
        for rule in fhs_lint.RULES:
            self.assertIn(f"[{rule}]", out, f"rule {rule} never fired")
        self.assertIn("finding(s)", err)


class CleanFixtures(unittest.TestCase):
    def test_clean_tree_passes(self) -> None:
        code, out, _ = run_lint(str(FIXTURES / "clean"))
        self.assertEqual(code, 0, out)
        self.assertEqual(out, "")


class Suppressions(unittest.TestCase):
    def test_allow_comments_suppress(self) -> None:
        code, out, _ = run_lint(str(FIXTURES / "suppressed"))
        self.assertEqual(code, 0, out)

    def test_without_suppression_rules_fire(self) -> None:
        # Sanity: the suppressed fixture only passes BECAUSE of the
        # allows -- strip them and the same file must fail.
        text = (FIXTURES / "suppressed" / "src" / "sim" / "suppressed.cc").read_text()
        self.assertIn("fhs-lint: allow(", text)
        import re
        import tempfile

        stripped = re.sub(r"//\s*fhs-lint:\s*allow\([^)]*\)", "//", text)
        with tempfile.TemporaryDirectory() as tmp:
            target = pathlib.Path(tmp) / "src" / "sim"
            target.mkdir(parents=True)
            (target / "suppressed.cc").write_text(stripped)
            code, out, _ = run_lint(tmp)
        self.assertEqual(code, 1, out)

    def test_unknown_rule_in_allow_is_an_error(self) -> None:
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            target = pathlib.Path(tmp) / "src" / "sim"
            target.mkdir(parents=True)
            (target / "bad_allow.cc").write_text(
                "int x = 0;  // fhs-lint: allow(no-such-rule)\n"
            )
            code, _, err = run_lint(tmp)
        self.assertEqual(code, 2)
        self.assertIn("no-such-rule", err)


class CommandLine(unittest.TestCase):
    def test_unknown_rule_flag(self) -> None:
        code, _, err = run_lint("--rules", "bogus", str(FIXTURES / "clean"))
        self.assertEqual(code, 2)
        self.assertIn("bogus", err)

    def test_missing_path(self) -> None:
        code, _, err = run_lint(str(FIXTURES / "does-not-exist"))
        self.assertEqual(code, 2)
        self.assertIn("no such path", err)

    def test_rule_subset(self) -> None:
        # With only pointer-order enabled, the wall-clock fixture is clean.
        code, out, _ = run_lint(
            "--rules", "pointer-order",
            str(FIXTURES / "trigger" / "src" / "sim" / "wall_clock_bad.cc"),
        )
        self.assertEqual(code, 0, out)

    def test_list_rules(self) -> None:
        code, out, _ = run_lint("--list-rules")
        self.assertEqual(code, 0)
        for rule in fhs_lint.RULES:
            self.assertIn(rule, out)


class ScannerCornerCases(unittest.TestCase):
    def lint_text(self, text: str, relative: str = "src/sim/case.cc") -> tuple[int, str]:
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            target = pathlib.Path(tmp) / relative
            target.parent.mkdir(parents=True)
            target.write_text(text)
            code, out, _ = run_lint(tmp)
        return code, out

    def test_patterns_in_strings_and_comments_ignored(self) -> None:
        code, out = self.lint_text(
            '// std::random_device in a comment\n'
            'const char* kDoc = "call time() and rand() for fun";\n'
            "/* std::cout << std::endl; system_clock too */\n"
        )
        self.assertEqual(code, 0, out)

    def test_raw_string_ignored(self) -> None:
        code, out = self.lint_text(
            'const char* kJson = R"({"clock": "system_clock"})";\n'
        )
        self.assertEqual(code, 0, out)

    def test_module_scoping(self) -> None:
        # The same wall-clock read outside src/<deterministic>/ is fine.
        hazard = "#include <ctime>\nlong f() { return time(nullptr); }\n"
        code, _ = self.lint_text(hazard, relative="src/support/case.cc")
        self.assertEqual(code, 0)
        code, _ = self.lint_text(hazard, relative="src/sim/case.cc")
        self.assertEqual(code, 1)

    def test_time_arith_module_scoping(self) -> None:
        # support/ hosts checked.hh itself and the CLI: raw int64 is its
        # business.  The same decl inside core/ must fail.
        hazard = "#include <cstdint>\nstd::int64_t deadline_ticks = 1;\n"
        code, _ = self.lint_text(hazard, relative="src/support/case.cc")
        self.assertEqual(code, 0)
        code, _ = self.lint_text(hazard, relative="src/core/case.cc")
        self.assertEqual(code, 1)

    def test_ostream_chain_is_not_a_shift(self) -> None:
        # Multi-`<<` lines are stream insertion chains, not arithmetic.
        code, out = self.lint_text(
            'void f(std::ostream& out, long flow_time) {\n'
            '  out << flow_time << 0;\n'
            '}\n',
            relative="src/graph/case.cc",
        )
        self.assertEqual(code, 0, out)

    def test_layering_include_in_comment_ignored(self) -> None:
        code, out = self.lint_text(
            '// #include "service/service.hh" -- discussed, rejected\n'
            'int x = 0;\n',
            relative="src/core/case.cc",
        )
        self.assertEqual(code, 0, out)


if __name__ == "__main__":
    unittest.main(verbosity=2)
