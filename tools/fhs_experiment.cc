// fhs_experiment -- general experiment driver.
//
//   fhs_experiment --workload=ir --assignment=layered --cluster=medium
//                  --schedulers=kgreedy,lspan,mqb --instances=1000 --json
//
// Runs every named scheduler on the same distribution of (job, cluster)
// instances and prints the completion-time-ratio table (or CSV/JSON).
//
// With --exact, each instance is additionally solved to optimality by
// the branch-and-bound solver (src/opt) and the table reports true
// optimality gaps T/OPT next to the usual T/L -- cap the workload with
// --max-tasks so every draw fits the solver (<= 32 tasks):
//
//   fhs_experiment --workload=tree --max-tasks=20 --instances=24 --exact
#include <iostream>
#include <span>

#include "exp/json.hh"
#include "exp/report.hh"
#include "exp/tool_options.hh"
#include "obs/metrics.hh"
#include "opt/gap.hh"
#include "sched/registry.hh"
#include "support/cli.hh"
#include "support/rng.hh"
#include "workload/workload.hh"

int main(int argc, char** argv) {
  using namespace fhs;
  CliFlags flags;
  flags.define("workload", "ir", "job family: ep | tree | ir");
  flags.define("assignment", "layered", "type assignment: layered | random");
  flags.define_int("k", 4, "number of resource types");
  flags.define("cluster", "medium", "small | medium | <pmin>,<pmax>");
  flags.define("schedulers", "kgreedy,lspan,dtype,maxdp,shiftbt,mqb",
               "comma-separated policy names");
  flags.define_int("instances", 300, "instances to run");
  flags.define_bool("preemptive", false, "preemptive scheduling quantum");
  flags.define_int("seed", 42, "master RNG seed");
  flags.define_int("threads", 0, "worker threads (0 = auto)");
  flags.define_int("skew-type", -1, "type whose processors get scaled (-1 = none)");
  flags.define_double("skew-factor", 0.2, "scale factor for --skew-type");
  flags.define_bool("csv", false, "emit the table as CSV");
  flags.define_bool("json", false, "emit the full result as JSON");
  flags.define_bool("exact", false,
                    "solve each instance exactly (B&B) and report true gaps");
  flags.define_int("max-tasks", 0,
                   "cap tree growth at this many tasks (0 = family default)");
  flags.define_int("exact-max-tasks", 32,
                   "refuse --exact instances larger than this");
  flags.define_int("exact-max-nodes", 20000000,
                   "B&B node budget per subproblem for --exact");
  try {
    if (!flags.parse(argc, argv)) return 0;

    const auto k = static_cast<ResourceType>(flags.get_int("k"));
    const TypeAssignment assignment =
        parse_type_assignment(flags.get_string("assignment"));
    ExperimentSpec spec;
    const std::string family = flags.get_string("workload");
    spec.workload = parse_workload_family(family, assignment, k);

    if (flags.get_int("max-tasks") > 0) {
      spec.workload = with_tree_task_cap(
          spec.workload, static_cast<std::size_t>(flags.get_int("max-tasks")));
    }

    const std::string cluster = flags.get_string("cluster");
    spec.cluster = parse_cluster_params(cluster, k);
    if (flags.get_int("skew-type") >= 0) {
      spec.cluster.skew_type = static_cast<ResourceType>(flags.get_int("skew-type"));
      spec.cluster.skew_factor = flags.get_double("skew-factor");
    }

    spec.name = family + " (" + flags.get_string("assignment") + ", " + cluster + ")";
    spec.schedulers = split_scheduler_list(flags.get_string("schedulers"));
    spec.instances = static_cast<std::size_t>(flags.get_int("instances"));
    spec.mode = flags.get_bool("preemptive") ? ExecutionMode::kPreemptive
                                             : ExecutionMode::kNonPreemptive;
    spec.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    spec.threads = static_cast<std::size_t>(flags.get_int("threads"));

    if (flags.get_bool("exact")) {
      if (spec.mode == ExecutionMode::kPreemptive) {
        throw std::invalid_argument(
            "--exact computes the non-preemptive optimum; drop --preemptive");
      }
      GapSpec gap;
      gap.name = spec.name;
      gap.workload = spec.workload;
      gap.cluster = spec.cluster;
      gap.schedulers = spec.schedulers;
      gap.instances = spec.instances;
      gap.seed = spec.seed;
      gap.threads = spec.threads;
      gap.bnb.max_nodes =
          static_cast<std::uint64_t>(flags.get_int("exact-max-nodes"));

      // Pre-scan the instance draws (generation is cheap; solving is
      // not) so an oversized draw fails fast with the flag to fix it.
      const auto cap = static_cast<std::size_t>(flags.get_int("exact-max-tasks"));
      for (std::size_t i = 0; i < gap.instances; ++i) {
        Rng rng(mix_seed(gap.seed, i));
        const KDag dag = generate(gap.workload, rng);
        if (dag.task_count() > cap) {
          throw std::invalid_argument(
              "--exact: instance " + std::to_string(i) + " draws " +
              std::to_string(dag.task_count()) +
              " tasks (> --exact-max-tasks); shrink the workload, e.g. "
              "--max-tasks=" + std::to_string(cap));
        }
      }

      const GapResult gaps = run_gap_study(gap);
      if (flags.get_bool("json")) {
        write_json(std::cout, gaps);
      } else {
        print_gap_table(std::cout, gaps);
      }
      return 0;
    }

    SweepOptions sweep_options;
    sweep_options.threads = static_cast<std::size_t>(flags.get_int("threads"));
    const SweepResult sweep =
        run_sweep(std::span<const ExperimentSpec>(&spec, 1), sweep_options);
    if (flags.get_bool("json")) {
      // {"sweep": <deterministic result>, "obs": <process metrics>} --
      // the sweep block stays byte-identical across thread counts; the
      // obs block carries the timing-dependent instrumentation.
      std::cout << "{\n\"sweep\": ";
      write_json(std::cout, sweep);  // includes cells/sec and per-cell timing
      std::cout << ",\n\"obs\": ";
      obs::write_json(std::cout, obs::Registry::global().snapshot());
      std::cout << "\n}\n";
    } else {
      print_result(std::cout, sweep.results.front(), flags.get_bool("csv"));
      std::cerr << sweep.metrics.cells << " cells on " << sweep.metrics.threads
                << " threads in " << sweep.metrics.wall_seconds << " s ("
                << sweep.metrics.cells_per_second() << " cells/s)\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "fhs_experiment: " << error.what() << '\n';
    return 1;
  }
  return 0;
}
