#!/usr/bin/env python3
"""fhs_lint: domain determinism & concurrency lint for the FHS tree.

The simulator's contract is bit-for-bit determinism: the same seed and
spec must produce byte-identical reports at any thread count, and a
journal replay must reproduce the live run exactly.  The C++ type
system cannot express "no wall-clock reads" or "no iteration-order
dependence", so this lint enforces the contract's preconditions
syntactically:

  wall-clock       entropy / wall-clock sources (std::random_device,
                   rand(), time(), system_clock, ...) in deterministic
                   modules.  steady_clock is exempt: it feeds timing
                   metrics, never results.
  unordered-iter   iteration over std::unordered_{map,set,...} in
                   deterministic modules -- hash iteration order is
                   unspecified and varies across libstdc++ versions,
                   so any fold over it poisons determinism.
  pointer-order    pointer-keyed std::map/std::set (or std::less<T*>)
                   in deterministic modules -- comparing addresses
                   gives a different order every run under ASLR.
  stream-hot-path  std::cout / std::endl in hot-path modules; endl
                   flushes and cout interleaves across threads.
                   Report writers take an std::ostream& instead.
  guarded-field    a class declaring a mutex member must annotate every
                   other data member with FHS_GUARDED_BY (or carry an
                   explicit allow) so Clang's thread safety analysis
                   has a complete lock map.
  time-arith       raw arithmetic on virtual-time-like quantities in
                   deterministic/hot modules: declaring one as bare
                   int64_t, or using built-in `*`/`<<` on it.  Time,
                   durations, credit and energy must live in the strong
                   types of support/checked.hh (VirtualTime, VirtualDur,
                   Credit, EnergyMilli); overflow-prone products and
                   shifts go through checked_mul/checked_shl/
                   saturating_add, which trap in debug and saturate in
                   release instead of silently wrapping.
  module-layering  core/ and support/ are the bottom of the library DAG;
                   an #include of service/, shard/ or rt/ from them
                   inverts the layering (and would make the strong-type
                   bedrock depend on its own consumers).

Suppression: append `// fhs-lint: allow(<rule>[, <rule>...])` to the
offending line, or place it alone on the line above.  Every allow is
greppable, which is the point -- exemptions are visible in review.

Exit codes: 0 clean, 1 findings, 2 usage error.  Stdlib only.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import Iterable, NamedTuple

RULES = {
    "wall-clock": "entropy/wall-clock source in a deterministic module",
    "unordered-iter": "unordered-container iteration in a deterministic module",
    "pointer-order": "pointer-keyed ordered container in a deterministic module",
    "stream-hot-path": "std::cout/std::endl in a hot-path module",
    "guarded-field": "unannotated data member in a mutex-holding class",
    "time-arith": "raw int64 arithmetic on a time-like quantity in a "
                  "deterministic/hot module",
    "module-layering": "core/support including a higher layer (service/shard/rt)",
}

# Modules whose outputs are part of the determinism contract (results,
# schedules, reports).  support/ is excluded: it hosts the CLI and the
# timing helpers that are *supposed* to read clocks.
DETERMINISTIC_MODULES = {
    "sim", "sched", "graph", "exp", "workload", "multijob", "flex", "metrics",
    "fault", "core", "rt", "opt",
}

# Modules on the simulate/schedule/serve hot path where ad-hoc console
# output is either a perf bug (endl flush) or a data race (interleaved
# cout from worker threads).
HOT_MODULES = {
    "sim", "sched", "graph", "multijob", "obs", "service", "shard", "flex", "exp",
    "fault", "core", "rt", "opt",
}

SOURCE_SUFFIXES = {".hh", ".h", ".cc", ".cpp", ".cxx", ".hpp"}

ALLOW_RE = re.compile(r"fhs-lint:\s*allow\(\s*([a-z\-,\s]+?)\s*\)")


class Finding(NamedTuple):
    path: pathlib.Path
    line: int  # 1-based
    rule: str
    message: str


def split_code_and_comments(text: str) -> tuple[list[str], list[str]]:
    """Returns (code_lines, comment_lines): the file with comments and
    string/char literals blanked out, and the comment text per line.
    Line structure is preserved so indices match the original file."""
    code: list[str] = []
    comments: list[str] = []
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    code_line: list[str] = []
    comment_line: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "\n":
            if state == "line_comment":
                state = "code"
            code.append("".join(code_line))
            comments.append("".join(comment_line))
            code_line, comment_line = [], []
            i += 1
            continue
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if ch == "R" and nxt == '"':
                close = text.find("(", i + 2)
                if close != -1:
                    raw_delim = ")" + text[i + 2 : close] + '"'
                    state = "raw"
                    code_line.append(" ")
                    i = close + 1
                    continue
            if ch == '"':
                state = "string"
                code_line.append(" ")
                i += 1
                continue
            if ch == "'":
                state = "char"
                code_line.append(" ")
                i += 1
                continue
            code_line.append(ch)
            i += 1
        elif state in ("line_comment", "block_comment"):
            if state == "block_comment" and ch == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            comment_line.append(ch)
            i += 1
        elif state == "string":
            if ch == "\\":
                i += 2
                continue
            if ch == '"':
                state = "code"
            i += 1
        elif state == "char":
            if ch == "\\":
                i += 2
                continue
            if ch == "'":
                state = "code"
            i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                i += len(raw_delim)
                continue
            i += 1
    code.append("".join(code_line))
    comments.append("".join(comment_line))
    return code, comments


def allowed_rules(comments: list[str]) -> list[set[str]]:
    """Per-line set of suppressed rules.  An allow on line i covers line
    i; an allow alone on a line also covers line i+1."""
    allowed: list[set[str]] = [set() for _ in comments]
    for i, comment in enumerate(comments):
        match = ALLOW_RE.search(comment)
        if not match:
            continue
        rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
        unknown = rules - set(RULES)
        if unknown:
            raise ValueError(
                f"line {i + 1}: unknown rule(s) in allow(): {', '.join(sorted(unknown))}"
            )
        allowed[i] |= rules
        if i + 1 < len(allowed):
            allowed[i + 1] |= rules
    return allowed


def module_of(path: pathlib.Path) -> str | None:
    """The module name: the path component directly under a `src` dir
    (mirrored fixture trees count), else None."""
    parts = path.parts
    for i, part in enumerate(parts[:-1]):
        if part == "src" and i + 1 < len(parts) - 0:
            nxt = parts[i + 1]
            return nxt if nxt != path.name else None
    return None


WALL_CLOCK_PATTERNS = [
    (re.compile(r"std::random_device"), "std::random_device is nondeterministic"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand() draws from global state"),
    (re.compile(r"(?<![\w:])time\s*\("), "time() reads the wall clock"),
    (re.compile(r"(?<![\w:])gettimeofday\s*\("), "gettimeofday() reads the wall clock"),
    (re.compile(r"(?<![\w:])clock\s*\(\s*\)"), "clock() reads the process clock"),
    (re.compile(r"system_clock"), "system_clock reads the wall clock"),
    (
        re.compile(r"high_resolution_clock"),
        "high_resolution_clock may alias system_clock; use steady_clock",
    ),
]

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;(){]*>[&\s]+(\w+)\s*[;,={)]"
)
POINTER_ORDER_PATTERNS = [
    re.compile(r"std::(?:map|set|multimap|multiset)\s*<\s*(?:const\s+)?[\w:]+\s*\*"),
    re.compile(r"std::less\s*<\s*(?:const\s+)?[\w:]+\s*\*\s*>"),
]
STREAM_PATTERNS = [
    (re.compile(r"std::cout\b"), "std::cout interleaves across threads"),
    (re.compile(r"std::endl\b"), "std::endl forces a flush per line"),
]

MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:fhs::)?(?:Mutex|std::(?:mutex|shared_mutex|recursive_mutex))"
    r"\s+\w+\s*;"
)
GUARD_EXEMPT_RE = re.compile(
    r"std::atomic|std::condition_variable|\bMutex\b|std::mutex|std::shared_mutex"
    r"|^\s*(?:static|constexpr)\b|^\s*(?:mutable\s+)?const\b"
    # Not data members at all: nested/forward type declarations, aliases,
    # friends, and access specifiers.
    r"|^\s*(?:class|struct|enum|union|using|typedef|friend|template|public|"
    r"private|protected)\b"
)
CLASS_OPEN_RE = re.compile(r"\b(?:class|struct)\s+(?:FHS_\w+(?:\([^)]*\))?\s+)?(\w+)")
DATA_MEMBER_RE = re.compile(r"[>\w&\]]\s+(\w+)\s*(?:=[^;]*|\{[^}]*\})?\s*;\s*$")


def _strip_annotations(line: str) -> str:
    return re.sub(r"FHS_\w+\s*(\([^()]*\))?", "", line)


# --- time-arith -------------------------------------------------------------
# A *time-like* identifier is snake_case (PascalCase type names like
# VirtualTime are the strong types themselves) with at least one segment
# naming a virtual-time/credit/energy quantity.  Matching whole segments
# keeps "ticket" from matching "tick" and "particle" from "tick".
TIME_SEGMENTS = {
    "time", "times", "tick", "ticks", "deadline", "deadlines", "epoch",
    "backoff", "credit", "energy", "latency", "dur", "duration", "horizon",
    "makespan", "expiry", "arrival", "arrivals",
}
IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
# int64 declaration whose declared name is time-like: `int64_t deadline`,
# `std::vector<std::int64_t> busy_ticks` (the `>` hop), references and
# pointers.  Casts never match: `static_cast<int64_t>(x)` has no
# identifier directly after the closing angle.  Signed only: virtual
# time is signed, while uint64_t legitimately carries wall-clock metrics
# (obs) and wire-format fields (stats JSON).
INT64_DECL_RE = re.compile(r"\b(?:std::)?int64_t\b[\s>&*]*([a-z][a-z0-9_]*)")
# `ident * ...` / `... * ident` in a binary-operator position (the char
# before a right-operand match must close a value: identifier, literal,
# `)` or `]` -- which excludes unary derefs like `return *flow_time_ptr`).
MUL_LEFT_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\s*(?:\[[^\]]*\]\s*)?\*(?![*/])")
MUL_RIGHT_RE = re.compile(r"([\w)\]])\s*\*\s*([A-Za-z_][A-Za-z0-9_]*)")
SHL_LEFT_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\s*(?:\[[^\]]*\]\s*)?<<")


def is_time_like(ident: str) -> bool:
    if not re.fullmatch(r"[a-z][a-z0-9_]*_?", ident):
        return False  # PascalCase/ALL_CAPS names are types/constants
    return any(seg in TIME_SEGMENTS for seg in ident.strip("_").split("_"))


def check_time_arith(code: list[str], findings: list[Finding], path: pathlib.Path) -> None:
    for i, line in enumerate(code):
        # double/float math is statistics (utilization, means), not the
        # exact integer timeline -- exempt.
        if re.search(r"\b(?:double|float)\b", line):
            continue
        for match in INT64_DECL_RE.finditer(line):
            if is_time_like(match.group(1)):
                findings.append(Finding(
                    path, i + 1, "time-arith",
                    f"'{match.group(1)}' declared as raw int64; use "
                    "VirtualTime/VirtualDur/Credit/EnergyMilli from "
                    "support/checked.hh (the Time alias is for module "
                    "boundaries only)",
                ))
        for match in MUL_LEFT_RE.finditer(line):
            if is_time_like(match.group(1)):
                findings.append(Finding(
                    path, i + 1, "time-arith",
                    f"built-in `*` on '{match.group(1)}' can overflow "
                    "silently; use checked_mul/saturating_mul",
                ))
        for match in MUL_RIGHT_RE.finditer(line):
            if is_time_like(match.group(2)):
                findings.append(Finding(
                    path, i + 1, "time-arith",
                    f"built-in `*` on '{match.group(2)}' can overflow "
                    "silently; use checked_mul/saturating_mul",
                ))
        # Left operand of `<<` only: `out << some_time` streams, which is
        # fine; `some_time << n` is the overflow-prone arithmetic shift.
        # Ostream chains have several `<<` per line; the arithmetic shift
        # at most one.
        if line.count("<<") == 1:
            for match in SHL_LEFT_RE.finditer(line):
                if is_time_like(match.group(1)):
                    findings.append(Finding(
                        path, i + 1, "time-arith",
                        f"built-in `<<` on '{match.group(1)}' reaches UB at "
                        "shift >= 64; use checked_shl",
                    ))


# --- module-layering --------------------------------------------------------
# The library DAG's bottom layers.  Raw-text lines (not blanked code):
# include paths live inside string literals.
LAYERING_BOTTOM = {"core", "support"}
LAYERING_FORBIDDEN_RE = re.compile(r'^\s*#\s*include\s*["<](service|shard|rt)/')


def check_module_layering(
    raw_lines: list[str], findings: list[Finding], path: pathlib.Path
) -> None:
    for i, line in enumerate(raw_lines):
        match = LAYERING_FORBIDDEN_RE.match(line)
        if match:
            findings.append(Finding(
                path, i + 1, "module-layering",
                f"{module_of(path)}/ must not include {match.group(1)}/ "
                "(layering inversion: the arithmetic bedrock would depend "
                "on its consumers)",
            ))


def check_wall_clock(code: list[str], findings: list[Finding], path: pathlib.Path) -> None:
    for i, line in enumerate(code):
        for pattern, why in WALL_CLOCK_PATTERNS:
            if pattern.search(line):
                findings.append(Finding(path, i + 1, "wall-clock", why))


def check_unordered_iter(
    code: list[str], findings: list[Finding], path: pathlib.Path
) -> None:
    names = set()
    for line in code:
        names.update(UNORDERED_DECL_RE.findall(line))
    if not names:
        return
    alts = "|".join(re.escape(n) for n in sorted(names))
    iter_re = re.compile(
        rf"(?::\s*(?:{alts})\s*\))|(?:\b(?:{alts})\s*\.\s*c?(?:begin|end|rbegin)\s*\()"
    )
    for i, line in enumerate(code):
        if iter_re.search(line):
            findings.append(
                Finding(
                    path,
                    i + 1,
                    "unordered-iter",
                    "iteration order over an unordered container is unspecified; "
                    "sort the keys first or use std::map/a sorted vector",
                )
            )


def check_pointer_order(
    code: list[str], findings: list[Finding], path: pathlib.Path
) -> None:
    for i, line in enumerate(code):
        for pattern in POINTER_ORDER_PATTERNS:
            if pattern.search(line):
                findings.append(
                    Finding(
                        path,
                        i + 1,
                        "pointer-order",
                        "address order differs run to run under ASLR; key by a "
                        "stable id or supply a by-value comparator",
                    )
                )


def check_stream_hot_path(
    code: list[str], findings: list[Finding], path: pathlib.Path
) -> None:
    for i, line in enumerate(code):
        for pattern, why in STREAM_PATTERNS:
            if pattern.search(line):
                findings.append(
                    Finding(
                        path, i + 1, "stream-hot-path",
                        why + "; hot-path code writes to a caller-supplied ostream",
                    )
                )


def check_guarded_field(
    code: list[str], findings: list[Finding], path: pathlib.Path
) -> None:
    """Within each class/struct body that declares a mutex member, every
    sibling data member must carry FHS_GUARDED_BY / FHS_PT_GUARDED_BY.
    Heuristic scope: top-level member declarations without parentheses
    (function declarations and in-class lambdas are skipped)."""
    # Stack entry: [is_class_body, mutex_line or None, member_lines]
    stack: list[list] = []
    pending_class = False  # saw a class head whose '{' is on a later line
    for i, raw in enumerate(code):
        line = raw
        for ch_i, ch in enumerate(line):
            if ch == "{":
                before = line[:ch_i]
                head = CLASS_OPEN_RE.search(before)
                is_class = pending_class or (
                    head is not None
                    and ";" not in before[head.end():]
                    and not re.search(r"\benum\s+$", before[: head.start()])
                )
                stack.append([is_class, None, []])
                pending_class = False
            elif ch == "}":
                if stack:
                    frame = stack.pop()
                    if frame[0] and frame[1] is not None:
                        for member_i in frame[2]:
                            findings.append(
                                Finding(
                                    path,
                                    member_i + 1,
                                    "guarded-field",
                                    "class holds a mutex (line "
                                    f"{frame[1] + 1}) but this member has no "
                                    "FHS_GUARDED_BY",
                                )
                            )
        if "{" not in line:
            head = CLASS_OPEN_RE.search(line)
            if head is not None and ";" not in line[head.end():]:
                pending_class = True
            elif ";" in line:
                pending_class = False  # forward declaration or statement
        if not stack or not stack[-1][0]:
            continue
        frame = stack[-1]
        if MUTEX_MEMBER_RE.match(_strip_annotations(line)):
            frame[1] = i
            continue
        stripped = _strip_annotations(line)
        if "(" in stripped or ")" in stripped:
            continue  # function declaration / initializer with call
        if GUARD_EXEMPT_RE.search(stripped):
            continue
        if "FHS_GUARDED_BY" in line or "FHS_PT_GUARDED_BY" in line:
            continue
        if DATA_MEMBER_RE.search(stripped):
            frame[2].append(i)


def lint_file(path: pathlib.Path, rules: set[str]) -> list[Finding]:
    text = path.read_text(encoding="utf-8", errors="replace")
    code, comments = split_code_and_comments(text)
    try:
        allowed = allowed_rules(comments)
    except ValueError as err:
        raise ValueError(f"{path}: {err}") from None
    module = module_of(path)
    findings: list[Finding] = []
    if module in DETERMINISTIC_MODULES:
        if "wall-clock" in rules:
            check_wall_clock(code, findings, path)
        if "unordered-iter" in rules:
            check_unordered_iter(code, findings, path)
        if "pointer-order" in rules:
            check_pointer_order(code, findings, path)
    if module in HOT_MODULES and "stream-hot-path" in rules:
        check_stream_hot_path(code, findings, path)
    if (module in DETERMINISTIC_MODULES or module in HOT_MODULES) \
            and "time-arith" in rules:
        check_time_arith(code, findings, path)
    if module in LAYERING_BOTTOM and "module-layering" in rules:
        check_module_layering(text.splitlines(), findings, path)
    if "guarded-field" in rules:
        check_guarded_field(code, findings, path)
    return [
        f for f in findings if f.rule not in allowed[f.line - 1]
    ]


def iter_sources(roots: Iterable[pathlib.Path]) -> Iterable[pathlib.Path]:
    for root in roots:
        if root.is_file():
            if root.suffix in SOURCE_SUFFIXES:
                yield root
        else:
            yield from sorted(
                p for p in root.rglob("*") if p.suffix in SOURCE_SUFFIXES and p.is_file()
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fhs_lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("paths", nargs="*", type=pathlib.Path,
                        help="files or directories to lint")
    parser.add_argument("--rules", default=",".join(RULES),
                        help="comma-separated rule subset (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, description in RULES.items():
            print(f"{name}: {description}")
        return 0
    if not args.paths:
        parser.error("no paths given")

    rules = {r.strip() for r in args.rules.split(",") if r.strip()}
    unknown = rules - set(RULES)
    if unknown:
        print(f"fhs_lint: unknown rule(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2
    for root in args.paths:
        if not root.exists():
            print(f"fhs_lint: no such path: {root}", file=sys.stderr)
            return 2

    findings: list[Finding] = []
    for path in iter_sources(args.paths):
        try:
            findings.extend(lint_file(path, rules))
        except ValueError as err:
            print(f"fhs_lint: {err}", file=sys.stderr)
            return 2
    findings.sort(key=lambda f: (str(f.path), f.line, f.rule))
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if findings:
        print(f"fhs_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
