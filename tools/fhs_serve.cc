// fhs_serve -- drive the always-on scheduling service from the shell.
//
//   # stream job specs (concatenated .kdag records) from a file or stdin
//   fhs_serve --cluster=8,8 --policy=mqb jobs.kdags
//   fhs_serve --cluster=8,8 < jobs.kdags
//
//   # self-generate a submission stream and record a journal
//   fhs_serve --generate=1000 --workload=ep --journal=run.jsonl
//
//   # re-run a recorded session deterministically and validate it
//   fhs_serve --replay=run.jsonl --cluster=8,8 --check
//
// Every admitted job produces one JSON line on stdout, in ticket order,
// streamed as completions land:
//
//   {"ticket": 7, "folded_epoch": 200, "completion": 430, "flow_time": 230}
//
// Rejected submissions produce {"submission": i, "rejected": true}, and
// jobs that exhaust their attempts under --deadline produce
// {"ticket": 7, "timed_out": true, "attempts": 2, "completion": 900}.  A
// final ServiceStats JSON document goes to --stats=<path> (or stderr).
// --faults drives a deterministic fault plan inside the engine;
// --deadline/--max-attempts/--backoff cancel and retry slow jobs.
//
// --shards=N (default 1) serves with the sharded service instead: N
// worker shards over N slices of the cluster, with cross-shard work
// stealing (src/shard/).  The journal then stamps each fold with its
// shard, and --replay of such a journal needs the same --shards so the
// streams land back on the partition that produced them.  --shards=1
// keeps today's single-worker path and journal format, byte for byte.
// The deadline/retry flags work in both modes (a sharded retry re-folds
// on the shard that cancelled it).  --policy=edf|llf|gang selects the
// deadline-aware scheduler family (rt/stream_rt.hh), --admit=util
// rejects jobs whose L(J) lower bound already exceeds --deadline, and
// --energy integrates the engine power model into the final stats.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exp/json.hh"
#include "exp/tool_options.hh"
#include "graph/serialize.hh"
#include "machine/cluster.hh"
#include "obs/metrics.hh"
#include "service/service.hh"
#include "shard/shard_journal.hh"
#include "shard/sharded_service.hh"
#include "support/cli.hh"
#include "support/rng.hh"
#include "workload/workload.hh"

namespace {

using namespace fhs;

void emit_completion(std::ostream& out, std::uint64_t ticket, const JobStatus& status) {
  out << "{\"ticket\": " << ticket << ", \"folded_epoch\": " << status.folded_epoch
      << ", \"completion\": " << status.completion
      << ", \"flow_time\": " << status.flow_time << "}\n";
}

void emit_timeout(std::ostream& out, std::uint64_t ticket, const JobStatus& status) {
  out << "{\"ticket\": " << ticket << ", \"timed_out\": true, \"attempts\": "
      << status.attempts << ", \"completion\": " << status.completion << "}\n";
}

/// Parses --faults; validates against the cluster when non-empty.
FaultPlan parse_faults(const CliFlags& flags, const Cluster& cluster) {
  const FaultPlan faults = FaultPlan::parse(flags.get_string("faults"));
  if (!faults.empty()) faults.validate_against(cluster);
  return faults;
}

/// Replays a recorded journal and verifies it against the live
/// outcomes (flow times of completed jobs, terminal timeouts of the
/// rest); returns the process exit code.
int verify_replay(const std::string& journal_path, const Cluster& cluster,
                  const std::string& policy, const FaultPlan& faults,
                  const std::vector<std::pair<std::uint64_t, Time>>& live_completed,
                  const std::vector<std::uint64_t>& live_timed_out) {
  std::ifstream in(journal_path);
  if (!in) {
    std::cerr << "fhs_serve: cannot re-open journal " << journal_path << '\n';
    return 1;
  }
  const std::vector<JournalEntry> entries = read_journal(in);
  MultiEngineOptions options;
  options.record_trace = true;
  if (!faults.empty()) options.faults = &faults;
  const ReplayResult replay = replay_journal(entries, cluster, policy, options);
  for (const auto& [ticket, flow] : live_completed) {
    if (replay.cancelled_of(ticket)) {
      std::cerr << "fhs_serve: replay DIVERGED at ticket " << ticket
                << ": live completed but replay cancelled it\n";
      return 3;
    }
    const Time replayed = replay.flow_time_of(ticket);
    if (replayed != flow) {
      std::cerr << "fhs_serve: replay DIVERGED at ticket " << ticket << ": live "
                << flow << " vs replayed " << replayed << '\n';
      return 3;
    }
  }
  for (const std::uint64_t ticket : live_timed_out) {
    if (!replay.cancelled_of(ticket)) {
      std::cerr << "fhs_serve: replay DIVERGED at ticket " << ticket
                << ": live timed out but replay completed it\n";
      return 3;
    }
  }
  const auto violations = check_multijob_trace(
      replay.jobs, cluster, replay.result, faults.empty() ? nullptr : &faults);
  if (!violations.empty()) {
    std::cerr << "fhs_serve: replayed schedule invalid: " << violations.front() << '\n';
    return 3;
  }
  std::cerr << "replay verified: " << live_completed.size() << " jobs";
  if (!live_timed_out.empty()) {
    std::cerr << " (+" << live_timed_out.size() << " timed out)";
  }
  std::cerr << ", flow times identical, schedule valid\n";
  return 0;
}

/// Sharded twin of verify_replay: splits the journal, replays every
/// shard on its slice, and checks flow times plus per-shard schedules.
int verify_shard_replay(
    const std::string& journal_path, const ShardPartition& partition,
    const std::string& policy, const FaultPlan& faults,
    const std::vector<std::pair<std::uint64_t, Time>>& live_completed,
    const std::vector<std::uint64_t>& live_timed_out) {
  std::ifstream in(journal_path);
  if (!in) {
    std::cerr << "fhs_serve: cannot re-open journal " << journal_path << '\n';
    return 1;
  }
  const std::vector<JournalEntry> entries = read_journal(in);
  MultiEngineOptions options;
  options.record_trace = true;
  if (!faults.empty()) options.faults = &faults;
  const ShardReplayResult replay =
      replay_shard_journal(entries, partition, policy, options);
  for (const auto& [ticket, flow] : live_completed) {
    if (replay.cancelled_of(ticket)) {
      std::cerr << "fhs_serve: replay DIVERGED at ticket " << ticket
                << ": live completed but replay cancelled it\n";
      return 3;
    }
    const Time replayed = replay.flow_time_of(ticket);
    if (replayed != flow) {
      std::cerr << "fhs_serve: replay DIVERGED at ticket " << ticket << ": live "
                << flow << " vs replayed " << replayed << '\n';
      return 3;
    }
  }
  for (const std::uint64_t ticket : live_timed_out) {
    if (!replay.cancelled_of(ticket)) {
      std::cerr << "fhs_serve: replay DIVERGED at ticket " << ticket
                << ": live timed out but replay completed it\n";
      return 3;
    }
  }
  for (std::size_t s = 0; s < replay.shards.size(); ++s) {
    const ReplayResult& shard = replay.shards[s];
    // A shard whose whole backlog was stolen folded nothing; its empty
    // replay has no trace and is trivially valid.
    if (shard.jobs.empty()) continue;
    const auto violations =
        check_multijob_trace(shard.jobs, partition.shards[s], shard.result,
                             faults.empty() ? nullptr : &faults);
    if (!violations.empty()) {
      std::cerr << "fhs_serve: shard " << s
                << " replayed schedule invalid: " << violations.front() << '\n';
      return 3;
    }
  }
  std::cerr << "replay verified: " << live_completed.size() << " jobs";
  if (!live_timed_out.empty()) {
    std::cerr << " (+" << live_timed_out.size() << " timed out)";
  }
  std::cerr << " across " << replay.shards.size()
            << " shards, flow times identical, schedules valid\n";
  return 0;
}

/// Replays a sharded journal (--shards > 1): per-shard streams on the
/// partition's slices, reported in ticket order.
int run_shard_replay(const CliFlags& flags, const Cluster& cluster,
                     std::size_t shards,
                     const std::vector<JournalEntry>& entries) {
  const ShardPartition partition = make_shard_partition(cluster, shards);
  const FaultPlan faults = parse_faults(flags, cluster);
  MultiEngineOptions options;
  options.record_trace = flags.get_bool("check");
  if (!faults.empty()) options.faults = &faults;
  const ShardReplayResult replay = replay_shard_journal(
      entries, partition, flags.get_string("policy"), options);
  // One line per ticket, in ticket (= acceptance) order, regardless of
  // which shard ran the job.
  std::vector<std::uint64_t> tickets;
  for (const ReplayResult& shard : replay.shards) {
    tickets.insert(tickets.end(), shard.tickets.begin(), shard.tickets.end());
  }
  std::sort(tickets.begin(), tickets.end());
  std::size_t total = 0;
  Time makespan = 0;
  for (const std::uint64_t ticket : tickets) {
    std::cout << "{\"ticket\": " << ticket
              << ", \"flow_time\": " << replay.flow_time_of(ticket) << "}\n";
  }
  for (std::size_t s = 0; s < replay.shards.size(); ++s) {
    const ReplayResult& shard = replay.shards[s];
    total += shard.tickets.size();
    makespan = std::max(makespan, shard.result.makespan);
    if (flags.get_bool("check") && !shard.jobs.empty()) {
      const auto violations =
          check_multijob_trace(shard.jobs, partition.shards[s], shard.result,
                               faults.empty() ? nullptr : &faults);
      if (!violations.empty()) {
        std::cerr << "fhs_serve: shard " << s
                  << " replayed schedule invalid: " << violations.front() << '\n';
        return 2;
      }
    }
  }
  std::cerr << "replayed " << total << " jobs on " << replay.shards.size()
            << " shards: makespan " << makespan << '\n';
  return 0;
}

int run_replay(const CliFlags& flags, const Cluster& cluster) {
  std::ifstream in(flags.get_string("replay"));
  if (!in) {
    std::cerr << "fhs_serve: cannot open " << flags.get_string("replay") << '\n';
    return 1;
  }
  const std::vector<JournalEntry> entries = read_journal(in);
  const auto shards = static_cast<std::size_t>(flags.get_int("shards"));
  const bool shard_aware = std::any_of(
      entries.begin(), entries.end(),
      [](const JournalEntry& entry) { return entry.shard_aware(); });
  if (shard_aware && shards <= 1) {
    std::cerr << "fhs_serve: this journal was recorded by a sharded session; "
                 "pass the original --shards=N\n";
    return 1;
  }
  if (shards > 1) return run_shard_replay(flags, cluster, shards, entries);
  const FaultPlan faults = parse_faults(flags, cluster);
  MultiEngineOptions options;
  options.record_trace = flags.get_bool("check");
  if (!faults.empty()) options.faults = &faults;
  const ReplayResult replay =
      replay_journal(entries, cluster, flags.get_string("policy"), options);
  for (std::size_t i = 0; i < replay.tickets.size(); ++i) {
    if (!replay.result.cancelled.empty() && replay.result.cancelled[i] != 0) {
      std::cout << "{\"ticket\": " << replay.tickets[i]
                << ", \"folded_epoch\": " << replay.jobs[i].arrival
                << ", \"cancelled\": true}\n";
      continue;
    }
    std::cout << "{\"ticket\": " << replay.tickets[i]
              << ", \"folded_epoch\": " << replay.jobs[i].arrival
              << ", \"completion\": " << replay.result.completion[i]
              << ", \"flow_time\": " << replay.result.flow_time[i] << "}\n";
  }
  if (flags.get_bool("check")) {
    const auto violations = check_multijob_trace(
        replay.jobs, cluster, replay.result, faults.empty() ? nullptr : &faults);
    if (!violations.empty()) {
      std::cerr << "fhs_serve: replayed schedule invalid: " << violations.front()
                << '\n';
      return 2;
    }
  }
  std::cerr << "replayed " << replay.tickets.size() << " jobs: makespan "
            << replay.result.makespan << ", mean flow "
            << replay.result.mean_flow_time() << '\n';
  return 0;
}

/// Shared parsing of the --admit and --energy flags.
void apply_admit_energy(const CliFlags& flags, AdmissionConfig& admission,
                        std::optional<EnergyModel>& energy) {
  const std::string admit = flags.get_string("admit");
  if (admit == "util") {
    admission.utilization_admission = true;
  } else if (!admit.empty()) {
    throw std::runtime_error("--admit must be util (or empty)");
  }
  if (flags.get_bool("energy")) energy = EnergyModel{};
}

/// --shards > 1: serve with the sharded service.
int run_serve_sharded(const CliFlags& flags, const Cluster& cluster,
                      std::size_t shards) {
  ShardedConfig config;
  config.policy = flags.get_string("policy");
  config.epoch_length = flags.get_int("epoch");
  config.shards = shards;
  config.admission.max_queue_depth =
      static_cast<std::size_t>(flags.get_int("max-queue"));
  config.admission.max_outstanding_per_proc = flags.get_double("max-outstanding");
  config.deadline = flags.get_int("deadline");
  config.max_attempts = static_cast<std::uint32_t>(flags.get_int("max-attempts"));
  config.retry_backoff = flags.get_int("backoff");
  apply_admit_energy(flags, config.admission, config.energy);
  const std::string overload = flags.get_string("overload");
  if (overload == "reject") {
    config.admission.overload = OverloadPolicy::kReject;
  } else if (overload == "defer") {
    config.admission.overload = OverloadPolicy::kDefer;
  } else {
    throw std::runtime_error("--overload must be reject or defer");
  }
  const FaultPlan faults = parse_faults(flags, cluster);
  if (!faults.empty()) config.faults = &faults;
  std::ofstream journal_file;
  const std::string journal_path = flags.get_string("journal");
  if (!journal_path.empty()) {
    journal_file.open(journal_path);
    if (!journal_file) throw std::runtime_error("cannot open journal " + journal_path);
    config.journal = &journal_file;
  }

  std::ifstream file;
  std::istream* input = &std::cin;
  if (!flags.positional().empty()) {
    file.open(flags.positional().front());
    if (!file) throw std::runtime_error("cannot open " + flags.positional().front());
    input = &file;
  }
  const auto generate_count = static_cast<std::size_t>(flags.get_int("generate"));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const WorkloadParams workload = parse_workload_family(
      flags.get_string("workload"), TypeAssignment::kLayered, cluster.num_types());

  std::vector<std::uint64_t> tickets;
  std::vector<std::pair<std::uint64_t, Time>> live_completed;
  std::vector<std::uint64_t> live_timed_out;
  std::size_t cursor = 0;
  ServiceStats stats;
  ShardPartition partition;
  {
    ShardedService service(cluster, config);
    partition = service.partition();
    if (service.shard_count() != shards) {
      std::cerr << "fhs_serve: --shards=" << shards << " clamped to "
                << service.shard_count() << " (cluster has a type with only "
                << service.shard_count() << " processors)\n";
    }
    const auto flush_completed = [&] {
      while (cursor < tickets.size()) {
        const JobStatus status = service.poll(JobTicket{tickets[cursor]});
        if (status.state == JobState::kCompleted) {
          emit_completion(std::cout, tickets[cursor], status);
          live_completed.emplace_back(tickets[cursor], status.flow_time);
        } else if (status.state == JobState::kTimedOut ||
                   status.state == JobState::kRetriesExhausted) {
          emit_timeout(std::cout, tickets[cursor], status);
          live_timed_out.push_back(tickets[cursor]);
        } else {
          break;
        }
        ++cursor;
      }
    };
    std::size_t submitted = 0;
    const auto submit_one = [&](KDag dag) {
      const std::size_t submission = submitted++;
      const auto ticket = service.submit(std::move(dag));
      if (ticket.has_value()) {
        tickets.push_back(ticket->id);
      } else {
        std::cout << "{\"submission\": " << submission << ", \"rejected\": true}\n";
      }
      flush_completed();
    };
    if (generate_count > 0) {
      for (std::size_t i = 0; i < generate_count; ++i) {
        submit_one(generate(workload, rng));
      }
    } else {
      while (auto dag = read_next_kdag(*input)) submit_one(std::move(*dag));
    }
    service.drain();
    flush_completed();
    stats = service.stats();
  }
  journal_file.close();

  const std::string stats_path = flags.get_string("stats");
  if (!stats_path.empty()) {
    std::ofstream out(stats_path);
    write_json(out, stats);
  } else {
    write_json(std::cerr, stats);
  }
  const std::string metrics_path = flags.get_string("metrics-json");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) throw std::runtime_error("cannot open " + metrics_path);
    obs::write_json(out, obs::Registry::global().snapshot());
  }
  if (flags.get_bool("expect-backpressure") && stats.deferred == 0 &&
      stats.rejected == 0) {
    std::cerr << "fhs_serve: --expect-backpressure, but admission control never "
                 "deferred or rejected a submission\n";
    return 4;
  }
  if (flags.get_bool("verify-replay")) {
    if (journal_path.empty()) {
      std::cerr << "fhs_serve: --verify-replay requires --journal=<path>\n";
      return 1;
    }
    return verify_shard_replay(journal_path, partition, config.policy, faults,
                               live_completed, live_timed_out);
  }
  return 0;
}

int run_serve(const CliFlags& flags, const Cluster& cluster) {
  ServiceConfig config;
  config.policy = flags.get_string("policy");
  config.epoch_length = flags.get_int("epoch");
  config.admission.max_queue_depth =
      static_cast<std::size_t>(flags.get_int("max-queue"));
  config.admission.max_outstanding_per_proc = flags.get_double("max-outstanding");
  const std::string overload = flags.get_string("overload");
  if (overload == "reject") {
    config.admission.overload = OverloadPolicy::kReject;
  } else if (overload == "defer") {
    config.admission.overload = OverloadPolicy::kDefer;
  } else {
    throw std::runtime_error("--overload must be reject or defer");
  }
  const FaultPlan faults = parse_faults(flags, cluster);
  if (!faults.empty()) config.faults = &faults;
  config.deadline = flags.get_int("deadline");
  config.max_attempts = static_cast<std::uint32_t>(flags.get_int("max-attempts"));
  config.retry_backoff = flags.get_int("backoff");
  apply_admit_energy(flags, config.admission, config.energy);
  std::ofstream journal_file;
  const std::string journal_path = flags.get_string("journal");
  if (!journal_path.empty()) {
    journal_file.open(journal_path);
    if (!journal_file) throw std::runtime_error("cannot open journal " + journal_path);
    config.journal = &journal_file;
  }

  std::ifstream file;
  std::istream* input = &std::cin;
  if (!flags.positional().empty()) {
    file.open(flags.positional().front());
    if (!file) throw std::runtime_error("cannot open " + flags.positional().front());
    input = &file;
  }
  const auto generate_count = static_cast<std::size_t>(flags.get_int("generate"));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const WorkloadParams workload = parse_workload_family(
      flags.get_string("workload"), TypeAssignment::kLayered, cluster.num_types());

  std::vector<std::uint64_t> tickets;  // admitted, in submission == ticket order
  std::vector<std::pair<std::uint64_t, Time>> live_completed;  // (ticket, flow)
  std::vector<std::uint64_t> live_timed_out;  // terminal deadline outcomes
  std::size_t cursor = 0;  // tickets[cursor] is the next to report on stdout
  const auto stats_every = static_cast<std::size_t>(flags.get_int("stats-every"));
  std::size_t next_stats_dump = stats_every;
  ServiceStats stats;
  {
    SchedulerService service(cluster, config);
    const auto flush_completed = [&] {
      while (cursor < tickets.size()) {
        const JobStatus status = service.poll(JobTicket{tickets[cursor]});
        if (status.state == JobState::kCompleted) {
          emit_completion(std::cout, tickets[cursor], status);
          live_completed.emplace_back(tickets[cursor], status.flow_time);
        } else if (status.state == JobState::kTimedOut ||
                   status.state == JobState::kRetriesExhausted) {
          emit_timeout(std::cout, tickets[cursor], status);
          live_timed_out.push_back(tickets[cursor]);
        } else {
          break;
        }
        ++cursor;
        if (stats_every > 0 && cursor >= next_stats_dump) {
          const ServiceStats live = service.stats();
          std::cerr << "stats: submitted=" << live.submitted
                    << " admitted=" << live.admitted << " rejected=" << live.rejected
                    << " deferred=" << live.deferred << " completed=" << live.completed
                    << " epochs=" << live.epochs << " virtual_now=" << live.virtual_now
                    << '\n';
          next_stats_dump = cursor + stats_every;
        }
      }
    };
    std::size_t submitted = 0;
    const auto submit_one = [&](KDag dag) {
      const std::size_t submission = submitted++;
      const auto ticket = service.submit(std::move(dag));
      if (ticket.has_value()) {
        tickets.push_back(ticket->id);
      } else {
        std::cout << "{\"submission\": " << submission << ", \"rejected\": true}\n";
      }
      flush_completed();
    };
    if (generate_count > 0) {
      for (std::size_t i = 0; i < generate_count; ++i) {
        submit_one(generate(workload, rng));
      }
    } else {
      while (auto dag = read_next_kdag(*input)) submit_one(std::move(*dag));
    }
    service.drain();
    flush_completed();
    stats = service.stats();
  }
  journal_file.close();

  const std::string stats_path = flags.get_string("stats");
  if (!stats_path.empty()) {
    std::ofstream out(stats_path);
    write_json(out, stats);
  } else {
    write_json(std::cerr, stats);
  }
  const std::string metrics_path = flags.get_string("metrics-json");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) throw std::runtime_error("cannot open " + metrics_path);
    obs::write_json(out, obs::Registry::global().snapshot());
  }
  if (flags.get_bool("expect-backpressure") && stats.deferred == 0 &&
      stats.rejected == 0) {
    std::cerr << "fhs_serve: --expect-backpressure, but admission control never "
                 "deferred or rejected a submission\n";
    return 4;
  }
  if (flags.get_bool("verify-replay")) {
    if (journal_path.empty()) {
      std::cerr << "fhs_serve: --verify-replay requires --journal=<path>\n";
      return 1;
    }
    return verify_replay(journal_path, cluster, config.policy, faults,
                         live_completed, live_timed_out);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.define("policy", "mqb",
               "stream policy: kgreedy | fcfs | srjf | mqb | edf | llf | gang");
  flags.define_uint_list("cluster", "8,8,8,8", "per-type processor counts, e.g. 8,8");
  flags.define_int("epoch", 100, "virtual ticks per worker slice");
  flags.define_int("max-queue", 64, "admission: max submissions awaiting a fold");
  flags.define_double("max-outstanding", 1 << 14,
                      "admission: max outstanding work per processor (ticks)");
  flags.define("overload", "defer", "behaviour beyond a limit: reject | defer");
  flags.define("faults", "",
               "fault plan driven inside the engine, e.g. "
               "p3:fail@100;p3:recover@250;p0:slowx2@40 (see fault/fault_plan.hh)");
  flags.define_int("deadline", 0,
                   "cancel an attempt still unfinished this many virtual ticks "
                   "after it entered the engine (0 disables)");
  flags.define_int("max-attempts", 1,
                   "attempts per job before a timeout becomes terminal");
  flags.define_int("backoff", 0,
                   "virtual ticks before a retry enters the engine (doubles "
                   "per attempt, clamped at 2^16x)");
  flags.define("admit", "",
               "extra admission test: util rejects jobs whose completion-time "
               "lower bound L(J) already exceeds --deadline");
  flags.define_bool("energy", false,
                    "integrate the engine power model (1000mW busy, 100mW idle "
                    "floor, cubic slowdown scaling) into the final stats");
  flags.define_int("shards", 1,
                   "worker shards (1 = single-worker service; >1 slices the "
                   "cluster, enables work stealing, stamps the journal)");
  flags.define("journal", "", "record every fold to this JSONL file");
  flags.define("replay", "", "re-run a recorded journal instead of serving");
  flags.define_bool("check", false,
                    "with --replay: validate the schedule with the trace checker");
  flags.define_bool("verify-replay", false,
                    "after serving, replay the journal and require identical "
                    "per-job flow times");
  flags.define_bool("expect-backpressure", false,
                    "exit nonzero unless admission control deferred or rejected "
                    "at least one submission (smoke tests)");
  flags.define_int("generate", 0,
                   "submit this many generated jobs instead of reading input");
  flags.define("workload", "ep", "generator family for --generate: ep | tree | ir");
  flags.define_int("seed", 42, "RNG seed for --generate");
  flags.define("stats", "", "write the final ServiceStats JSON here (default stderr)");
  flags.define_int("stats-every", 0,
                   "dump a one-line live stats summary to stderr every N "
                   "reported completions (0 disables)");
  flags.define("metrics-json", "",
               "write the process-wide obs metrics snapshot JSON here at exit");
  try {
    if (!flags.parse(argc, argv)) return 0;
    const Cluster cluster(flags.get_uint_list("cluster"));
    if (!flags.get_string("replay").empty()) return run_replay(flags, cluster);
    const auto shards = static_cast<std::size_t>(flags.get_int("shards"));
    if (shards > 1) return run_serve_sharded(flags, cluster, shards);
    return run_serve(flags, cluster);
  } catch (const std::exception& error) {
    std::cerr << "fhs_serve: " << error.what() << '\n';
    return 1;
  }
}
